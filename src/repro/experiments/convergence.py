"""C1 (supplementary): convergence trajectory of the construction process.

§5.1 reports only the final exchange counts; this experiment records the
whole trajectory — average path length as a function of exchanges spent —
for recursion bounds 0 and 2.  Expected shape: both curves are monotone
with diminishing returns (the last level dominates the cost), and the
recursive variant reaches every depth with fewer exchanges.
"""

from __future__ import annotations

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.experiments.common import ExperimentResult, run_experiment_points
from repro.report.hist import render_plot, render_series
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder

EXPERIMENT_ID = "convergence"


def trajectory_curve(
    *,
    n_peers: int,
    maxl: int,
    refmax: int,
    recmax: int,
    sample_every: int,
    seed: int,
) -> tuple[int, list[tuple[float, float]]]:
    """One construction run: final exchange count + (exchanges, depth) curve."""
    config = PGridConfig(
        maxl=maxl, refmax=refmax, recmax=recmax,
        recursion_fanout=2 if recmax else None,
    )
    grid = PGrid(config, rng=rngmod.derive(seed, f"conv-{recmax}"))
    grid.add_peers(n_peers)
    report = GridBuilder(grid).build(
        sample_every=sample_every, max_exchanges=5_000_000
    )
    points = [
        (float(sample.exchanges), sample.average_depth)
        for sample in report.trajectory
    ]
    points.append((float(report.exchanges), report.average_depth))
    return report.exchanges, points


def run(
    *,
    n_peers: int = 500,
    maxl: int = 6,
    refmax: int = 1,
    recmax_values: tuple[int, ...] = (0, 2),
    sample_every: int | None = None,
    seed: int = 17,
    jobs: int | None = 1,
) -> ExperimentResult:
    """Record (exchanges, average depth) curves per recursion bound."""
    sample_every = sample_every or max(1, n_peers // 4)
    rows: list[list[object]] = []
    series: dict[str, list[tuple[float, float]]] = {}
    finals: dict[int, int] = {}
    outcomes = run_experiment_points(
        trajectory_curve,
        [
            {"n_peers": n_peers, "maxl": maxl, "refmax": refmax,
             "recmax": recmax, "sample_every": sample_every, "seed": seed}
            for recmax in recmax_values
        ],
        jobs=jobs,
    )
    for recmax, (final_exchanges, points) in zip(recmax_values, outcomes):
        finals[recmax] = final_exchanges
        series[f"recmax={recmax}"] = points
        for exchanges, depth in points:
            rows.append([recmax, exchanges, depth])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Convergence trajectory (N={n_peers}, maxl={maxl})",
        headers=["recmax", "exchanges", "avg depth"],
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl": maxl,
            "refmax": refmax,
            "recmax_values": list(recmax_values),
            "sample_every": sample_every,
            "seed": seed,
            "final_exchanges": finals,
        },
        notes=(
            "Expected shape: monotone depth growth with diminishing "
            "returns; the recursive variant reaches every depth level with "
            "fewer exchanges than recmax=0."
        ),
        extra_text="\n\n".join(
            [
                render_plot(
                    series,
                    title="Convergence: average depth vs. exchanges",
                    x_label="exchanges",
                    y_label="avg depth",
                ),
                render_series(
                    series,
                    title="Raw trajectory points",
                    x_label="exchanges",
                    y_label="avg depth",
                ),
            ]
        ),
    )
