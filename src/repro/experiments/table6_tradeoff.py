"""T6 (§5.2, sixth table): update-cost / query-cost trade-off.

For each configuration (``recbreadth`` ∈ {2, 3} × ``repetition`` ∈ {1, 2, 3})
the experiment performs updates via breadth-first propagation and then
queries each updated item several times, under two read strategies:

* **non-repetitive** — a single Fig. 2 search; success iff the answering
  replica already holds the new version (the paper's lower table half:
  success rates 0.65–0.994 at ~5.5 messages);
* **repetitive** — re-search until a fresh replica answers (upper half:
  success 1.0, query cost falling steeply as updates cover more replicas).

The paper's punchline: partially propagated updates plus repeated queries
beat near-complete propagation by a wide margin (break-even at ~160
queries/update).  The *repetitive* query-cost magnitudes in the paper imply
a costlier retry procedure than the straightforward retry-until-fresh we
implement (the paper does not specify its loop); the trade-off's shape —
monotone falling query cost vs. rising insertion cost, success pinned at
1.0 — is preserved.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.grid import PGrid
from repro.core.storage import DataItem
from repro.core.updates import ReadEngine, UpdateEngine, UpdateStrategy
from repro.experiments.common import (
    ExperimentResult,
    Section52Profile,
    build_section52_array_engine,
    build_section52_grid,
    section52_profile,
)
from repro.sim import rng as rngmod
from repro.sim.churn import BernoulliChurn
from repro.sim.workload import UniformKeyWorkload

EXPERIMENT_ID = "table6"

#: Paper rows: (recbreadth, repetition, repetitive?) ->
#: (successrate, query cost, insertion cost).
PAPER_ROWS = {
    (2, 1, True): (1.0, 137, 78),
    (2, 2, True): (1.0, 34, 147),
    (2, 3, True): (1.0, 17, 224),
    (3, 1, True): (1.0, 112, 637),
    (3, 2, True): (1.0, 13, 1434),
    (3, 3, True): (1.0, 13, 2086),
    (2, 1, False): (0.65, 5.5, 72),
    (2, 2, False): (0.85, 5.6, 145),
    (2, 3, False): (0.89, 5.4, 212),
    (3, 1, False): (0.95, 5.5, 734),
    (3, 2, False): (0.98, 5.5, 1363),
    (3, 3, False): (0.994, 5.4, 2080),
}


def run(
    profile: Section52Profile | None = None,
    *,
    grid: PGrid | None = None,
    use_cache: bool = True,
    n_updates: int | None = None,
    queries_per_update: int | None = None,
    recbreadth_values: tuple[int, ...] = (2, 3),
    repetition_values: tuple[int, ...] = (1, 2, 3),
    core: str = "object",
    array_engine=None,
) -> ExperimentResult:
    """Reproduce T6 on the shared §5.2 grid.

    ``core="array"`` drives the whole update/read matrix through
    :meth:`~repro.fast.BatchQueryEngine.publish_many` /
    :meth:`~repro.fast.BatchQueryEngine.read_many` over gridless flat
    state — required for the 100k-peer ``large`` profile.  Statistically
    equivalent to the object core, not bit-identical (different RNG
    streams; see ``repro.fast.query``).
    """
    if core not in ("object", "array"):
        raise ValueError(f"unknown core {core!r}: expected 'object' or 'array'")
    profile = profile or section52_profile()
    n_updates = n_updates if n_updates is not None else profile.n_updates
    queries_per_update = (
        queries_per_update
        if queries_per_update is not None
        else profile.queries_per_update
    )

    batch = None
    if core == "array":
        batch = array_engine or build_section52_array_engine(profile)
    else:
        grid = grid or build_section52_grid(profile, use_cache=use_cache)
        grid.online_oracle = BernoulliChurn(
            profile.p_online, rngmod.derive(profile.seed, "t6-churn")
        )
        updates = UpdateEngine(grid)
        reads = ReadEngine(grid, search=updates.search)
        addresses = grid.addresses()
    keys = UniformKeyWorkload(
        profile.query_key_length, rngmod.derive(profile.seed, "t6-keys")
    )
    pick = rngmod.derive(profile.seed, "t6-starts")

    rows: list[list[object]] = []
    for repetitive in (True, False):
        for recbreadth in recbreadth_values:
            for repetition in repetition_values:
                if batch is not None:
                    # Same draw order as the object loop below (key,
                    # holder, publish start, then the query starts), so
                    # both cores sweep identical workloads per config.
                    u_keys: list[str] = []
                    holders: list[int] = []
                    pub_starts: list[int] = []
                    read_starts: list[int] = []
                    for _ in range(n_updates):
                        u_keys.append(keys.next_key())
                        holders.append(pick.randrange(batch.n))
                        pub_starts.append(pick.randrange(batch.n))
                        for _ in range(queries_per_update):
                            read_starts.append(pick.randrange(batch.n))
                    versions = [1] * n_updates
                    published = batch.publish_many(
                        u_keys, holders, versions, pub_starts,
                        strategy=UpdateStrategy.BFS,
                        repetition=repetition, recbreadth=recbreadth,
                    )
                    insertion_cost = int(published.messages.sum())
                    tile = queries_per_update
                    read = batch.read_many(
                        [k for k in u_keys for _ in range(tile)],
                        [h for h in holders for _ in range(tile)],
                        [1] * (n_updates * tile),
                        read_starts,
                        repetitive=repetitive,
                    )
                    query_cost = int(read.messages.sum())
                    successes = int(read.success.sum())
                    queries = n_updates * tile
                else:
                    insertion_cost = 0
                    query_cost = 0
                    successes = 0
                    queries = 0
                    for update_index in range(n_updates):
                        key = keys.next_key()
                        holder = pick.choice(addresses)
                        item = DataItem(key=key, value=f"update-{update_index}")
                        version = 1
                        result = updates.publish(
                            pick.choice(addresses),
                            item,
                            holder,
                            strategy=UpdateStrategy.BFS,
                            repetition=repetition,
                            recbreadth=recbreadth,
                            version=version,
                        )
                        insertion_cost += result.messages
                        for _ in range(queries_per_update):
                            start = pick.choice(addresses)
                            if repetitive:
                                read = reads.read_repeated(
                                    start, key, holder, version
                                )
                            else:
                                read = reads.read_single(
                                    start, key, holder, version
                                )
                            query_cost += read.messages
                            successes += int(read.success)
                            queries += 1
                rows.append(
                    [
                        "repetitive" if repetitive else "non-repetitive",
                        recbreadth,
                        repetition,
                        successes / queries if queries else 0.0,
                        query_cost / queries if queries else 0.0,
                        insertion_cost / n_updates if n_updates else 0.0,
                        *(PAPER_ROWS[(recbreadth, repetition, repetitive)]),
                    ]
                )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"Update/query trade-off (N={profile.n_peers}, "
            f"{profile.p_online:.0%} online; {n_updates} updates x "
            f"{queries_per_update} queries)"
        ),
        headers=[
            "search",
            "recbreadth",
            "repetition",
            "successrate",
            "query cost",
            "insertion cost",
            "paper successrate",
            "paper query cost",
            "paper insertion cost",
        ],
        rows=rows,
        config={
            "profile": profile.name,
            "core": core,
            "n_updates": n_updates,
            "queries_per_update": queries_per_update,
            "recbreadth_values": list(recbreadth_values),
            "repetition_values": list(repetition_values),
        },
        notes=(
            "Expected shape: repetitive search pins success at 1.0 with "
            "query cost falling as insertion effort rises; non-repetitive "
            "search keeps ~5-message queries but success < 1, rising with "
            "insertion effort. Insertion cost grows steeply with recbreadth."
        ),
    )
