"""F5 (§5.2, Fig. 5): fraction of replicas found vs. messages spent.

The paper repeatedly searches for a random key of length maxl−1 and plots,
for the three update-propagation strategies, the percentage of existing
replicas identified against the number of messages used: breadth-first
search is far superior; repeated depth-first with and without buddy
forwarding perform comparably.
"""

from __future__ import annotations

from repro.core.grid import PGrid
from repro.core.updates import UpdateEngine, UpdateStrategy
from repro.experiments.common import (
    ExperimentResult,
    Section52Profile,
    build_section52_array_engine,
    build_section52_grid,
    section52_profile,
)
from repro.report.hist import render_series
from repro.sim import rng as rngmod
from repro.sim.churn import BernoulliChurn
from repro.sim.workload import UniformKeyWorkload

EXPERIMENT_ID = "fig5"

#: Effort sweep: repetitions for the DFS strategies, recbreadth for BFS.
DFS_REPETITIONS = (1, 2, 4, 8, 16, 32, 64)
BFS_RECBREADTHS = (1, 2, 3, 4)


def run(
    profile: Section52Profile | None = None,
    *,
    grid: PGrid | None = None,
    use_cache: bool = True,
    trials: int | None = None,
    core: str = "object",
    array_engine=None,
) -> ExperimentResult:
    """Reproduce Fig. 5: coverage vs. message cost per strategy.

    ``core="array"`` runs each strategy sweep through
    :meth:`~repro.fast.BatchQueryEngine.find_replicas_many` over
    gridless flat state — the only way to sweep the 100k-peer ``large``
    profile.  Statistically equivalent to the object core; the batch
    breadth-first frontier visits in wave order, biasing its coverage a
    few percent low (documented in ``repro.fast.query``).
    """
    if core not in ("object", "array"):
        raise ValueError(f"unknown core {core!r}: expected 'object' or 'array'")
    profile = profile or section52_profile()
    trials = trials if trials is not None else max(10, profile.n_updates // 2)

    keys = UniformKeyWorkload(
        profile.query_key_length, rngmod.derive(profile.seed, "f5-keys")
    )
    start_rng = rngmod.derive(profile.seed, "f5-starts")

    if core == "array":
        batch = array_engine or build_section52_array_engine(profile)

        def measure(
            strategy: UpdateStrategy, *, repetition: int, recbreadth: int
        ) -> tuple[float, float]:
            trial_keys = [keys.next_key() for _ in range(trials)]
            starts = [start_rng.randrange(batch.n) for _ in range(trials)]
            truth = batch.replicas_for_keys(trial_keys)
            result = batch.find_replicas_many(
                trial_keys, starts, strategy=strategy,
                repetition=repetition, recbreadth=recbreadth,
            )
            total_messages = int(result.messages.sum())
            total_coverage = 0.0
            for i in range(trials):
                replicas = truth.reached(i)
                if not len(replicas):
                    continue
                reached = set(result.reached(i).tolist())
                total_coverage += (
                    len(reached & set(replicas.tolist())) / len(replicas)
                )
            return total_messages / trials, total_coverage / trials

    else:
        grid = grid or build_section52_grid(profile, use_cache=use_cache)
        grid.online_oracle = BernoulliChurn(
            profile.p_online, rngmod.derive(profile.seed, "f5-churn")
        )
        engine = UpdateEngine(grid)
        addresses = grid.addresses()

        def measure(
            strategy: UpdateStrategy, *, repetition: int, recbreadth: int
        ) -> tuple[float, float]:
            total_messages = 0
            total_coverage = 0.0
            for _ in range(trials):
                key = keys.next_key()
                start = start_rng.choice(addresses)
                replicas = grid.replicas_for_key(key)
                if not replicas:
                    continue
                reached, messages, _failed = engine.find_replicas(
                    start, key, strategy=strategy, repetition=repetition,
                    recbreadth=recbreadth,
                )
                total_messages += messages
                total_coverage += len(reached & set(replicas)) / len(replicas)
            return total_messages / trials, total_coverage / trials

    rows: list[list[object]] = []
    series: dict[str, list[tuple[float, float]]] = {}
    sweeps: list[tuple[UpdateStrategy, str, tuple[int, ...]]] = [
        (UpdateStrategy.REPEATED_DFS, "repeated DFS", DFS_REPETITIONS),
        (UpdateStrategy.DFS_BUDDIES, "DFS + buddies", DFS_REPETITIONS),
        (UpdateStrategy.BFS, "breadth-first", BFS_RECBREADTHS),
    ]
    for strategy, label, efforts in sweeps:
        points: list[tuple[float, float]] = []
        for effort in efforts:
            if strategy is UpdateStrategy.BFS:
                messages, coverage = measure(
                    strategy, repetition=1, recbreadth=effort
                )
            else:
                messages, coverage = measure(
                    strategy, repetition=effort, recbreadth=1
                )
            rows.append([label, effort, messages, coverage])
            points.append((messages, coverage))
        series[label] = points

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"Replica discovery: coverage vs. messages "
            f"(N={profile.n_peers}, {profile.p_online:.0%} online)"
        ),
        headers=["strategy", "effort", "avg messages", "avg coverage"],
        rows=rows,
        config={
            "profile": profile.name,
            "core": core,
            "trials": trials,
            "dfs_repetitions": list(DFS_REPETITIONS),
            "bfs_recbreadths": list(BFS_RECBREADTHS),
            "query_key_length": profile.query_key_length,
        },
        notes=(
            "Expected shape: at equal message budgets, breadth-first search "
            "reaches a far larger replica fraction; repeated DFS and DFS+"
            "buddies are comparable to each other and much flatter."
        ),
        extra_text=render_series(
            series,
            title="Fig. 5 — replicas found vs. messages",
            x_label="messages",
            y_label="coverage",
        ),
    )
