"""T4/T5 (§5.1, fourth & fifth tables): effect of ``refmax`` on
construction cost, with and without the recursion fan-out bound.

With refmax > 1 there are more candidates for recursive case-4 exchanges.
Recursing into *all* of them makes ``e`` grow steeply (the paper calls this
out as a weakness of the original algorithm — table 4); limiting each
recursion step to 2 randomly selected referenced peers stabilizes the cost
(table 5, "the results become very stable").
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.table1_construction_scaling import construction_cost

EXPERIMENT_ID_UNBOUNDED = "table4"
EXPERIMENT_ID_BOUNDED = "table5"

#: Paper values: refmax -> e, for the unbounded and fan-out-2 variants.
PAPER_ROWS_UNBOUNDED = {1: 25285, 2: 39209, 3: 72130, 4: 125727}
PAPER_ROWS_BOUNDED = {1: 23826, 2: 37689, 3: 40961, 4: 43914}


def run(
    *,
    bounded_fanout: bool,
    n_peers: int = 1000,
    maxl: int = 6,
    recmax: int = 2,
    refmax_values: Sequence[int] = (1, 2, 3, 4),
    fanout: int = 2,
    seed: int = 4,
) -> ExperimentResult:
    """Reproduce T4 (``bounded_fanout=False``) or T5 (``True``)."""
    paper = PAPER_ROWS_BOUNDED if bounded_fanout else PAPER_ROWS_UNBOUNDED
    rows: list[list[object]] = []
    for refmax in refmax_values:
        exchanges, converged = construction_cost(
            n_peers,
            maxl=maxl,
            refmax=refmax,
            recmax=recmax,
            recursion_fanout=fanout if bounded_fanout else None,
            seed=seed,
        )
        rows.append(
            [refmax, exchanges, exchanges / n_peers, paper.get(refmax), converged]
        )
    variant = (
        f"recursion fan-out limited to {fanout}" if bounded_fanout
        else "unbounded recursion fan-out"
    )
    return ExperimentResult(
        experiment_id=(
            EXPERIMENT_ID_BOUNDED if bounded_fanout else EXPERIMENT_ID_UNBOUNDED
        ),
        title=f"Construction cost vs. refmax (N={n_peers}, recmax={recmax}; {variant})",
        headers=["refmax", "e", "e/N", "paper e", "converged"],
        rows=rows,
        config={
            "bounded_fanout": bounded_fanout,
            "fanout": fanout if bounded_fanout else None,
            "n_peers": n_peers,
            "maxl": maxl,
            "recmax": recmax,
            "refmax_values": list(refmax_values),
            "seed": seed,
        },
        notes=(
            "Expected shape: steep (super-linear) growth of e with refmax "
            "when recursion fans out into every reference; near-flat growth "
            "once the fan-out is bounded to 2."
        ),
    )
