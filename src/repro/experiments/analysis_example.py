"""A1 (§4 example): the Gnutella-scale sizing worked example.

The paper sizes a P-Grid for 10^7 files with 10-byte references, 100 KB of
index space per peer and 30% availability: key length k = 10, refmax = 20,
success probability > 99%, at least 20 409 peers required.  This experiment
runs the closed-form planner and checks all four numbers.
"""

from __future__ import annotations

from repro.core.analysis import plan_grid
from repro.experiments.common import ExperimentResult

EXPERIMENT_ID = "analysis_example"

PAPER_EXPECTED = {
    "key_length": 10,
    "refmax": 20,
    "min_peers": 20409,
    "success_floor": 0.99,
}


def run(
    *,
    d_global: int = 10**7,
    reference_bytes: int = 10,
    storage_bytes_per_peer: int = 10**5,
    p_online: float = 0.3,
    refmax: int = 20,
    i_leaf: int | None = 10**4 - 200,
) -> ExperimentResult:
    """Run the §4 worked example through the planner."""
    plan = plan_grid(
        d_global,
        reference_bytes=reference_bytes,
        storage_bytes_per_peer=storage_bytes_per_peer,
        p_online=p_online,
        refmax=refmax,
        i_leaf=i_leaf,
    )
    rows = [
        ["key length k", plan.key_length, PAPER_EXPECTED["key_length"]],
        ["refmax", plan.refmax, PAPER_EXPECTED["refmax"]],
        ["min peers (eq. 2)", plan.min_peers, PAPER_EXPECTED["min_peers"]],
        [
            "success probability (eq. 3)",
            round(plan.success_probability, 6),
            f"> {PAPER_EXPECTED['success_floor']}",
        ],
        ["i_leaf", plan.i_leaf, 10**4 - 200],
        ["storage used (bytes)", plan.storage_used, storage_bytes_per_peer],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="§4 sizing example: 10^7 files, 100 KB index budget, 30% online",
        headers=["quantity", "planner", "paper"],
        rows=rows,
        config={
            "d_global": d_global,
            "reference_bytes": reference_bytes,
            "storage_bytes_per_peer": storage_bytes_per_peer,
            "p_online": p_online,
            "refmax": refmax,
            "i_leaf": i_leaf,
        },
        notes="All four paper numbers must match exactly (closed form).",
    )
