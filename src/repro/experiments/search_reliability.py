"""S1 (§5.2, text): search reliability under 30% availability.

On the §5.2 grid with every contact succeeding with probability 0.3, the
paper runs 10 000 searches for random keys of length maxl−1 and observes
99.97% success at an average of 5.56 messages per search — confirming the
§4 analysis that ``refmax``-fold referencing makes search reliable despite
mostly-offline peers.
"""

from __future__ import annotations

from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.experiments.common import (
    ExperimentResult,
    Section52Profile,
    build_section52_array_engine,
    build_section52_grid,
    section52_profile,
)
from repro.core.analysis import search_success_probability
from repro.sim import rng as rngmod
from repro.sim.churn import BernoulliChurn
from repro.sim.metrics import RateAccumulator, summarize
from repro.sim.workload import QueryStream, UniformKeyWorkload

EXPERIMENT_ID = "search_reliability"

PAPER_SUCCESS_RATE = 0.9997
PAPER_AVG_MESSAGES = 5.5576


def run(
    profile: Section52Profile | None = None,
    *,
    grid: PGrid | None = None,
    use_cache: bool = True,
    n_searches: int | None = None,
    core: str = "object",
    array_engine=None,
) -> ExperimentResult:
    """Reproduce the §5.2 search-reliability measurement.

    ``core="array"`` resolves the whole query set through the vectorized
    :class:`~repro.fast.BatchQueryEngine` over gridless-built flat state
    (required for the 100k-peer ``large`` profile, where no object grid
    is ever materialized; statistically equivalent to the object core —
    see ``repro.fast.query``).  *array_engine* injects a pre-built
    engine, mirroring the *grid* parameter.
    """
    if core not in ("object", "array"):
        raise ValueError(f"unknown core {core!r}: expected 'object' or 'array'")
    profile = profile or section52_profile()
    n_searches = n_searches if n_searches is not None else profile.n_searches

    successes = RateAccumulator()
    if core == "array":
        engine = array_engine or build_section52_array_engine(profile)
        key_rng = rngmod.derive(profile.seed, "s1-keys")
        keys_stream = UniformKeyWorkload(profile.query_key_length, key_rng)
        start_rng = rngmod.derive(profile.seed, "s1-starts")
        keys = [keys_stream.next_key() for _ in range(n_searches)]
        starts = [start_rng.randrange(engine.n) for _ in range(n_searches)]
        result = engine.search_many(keys, starts)
        for flag in result.found:
            successes.record(bool(flag))
        message_counts = result.messages[result.found].tolist()
    else:
        grid = grid or build_section52_grid(profile, use_cache=use_cache)
        churn_rng = rngmod.derive(profile.seed, "s1-churn")
        grid.online_oracle = BernoulliChurn(profile.p_online, churn_rng)
        engine = SearchEngine(grid)
        stream = QueryStream(
            grid.addresses(),
            UniformKeyWorkload(
                profile.query_key_length, rngmod.derive(profile.seed, "s1-keys")
            ),
            rngmod.derive(profile.seed, "s1-starts"),
        )
        message_counts = []
        for start, key in stream.queries(n_searches):
            result = engine.query_from(start, key)
            successes.record(result.found)
            if result.found:
                message_counts.append(result.messages)

    messages = summarize(message_counts) if message_counts else None
    predicted = search_success_probability(
        profile.p_online, profile.refmax, profile.query_key_length
    )
    rows = [
        [
            n_searches,
            successes.rate,
            PAPER_SUCCESS_RATE,
            predicted,
            messages.mean if messages else None,
            PAPER_AVG_MESSAGES,
            messages.maximum if messages else None,
        ]
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"Search reliability at {profile.p_online:.0%} availability "
            f"(N={profile.n_peers}, key length {profile.query_key_length})"
        ),
        headers=[
            "searches",
            "success rate",
            "paper success",
            "eq.(3) lower bound",
            "avg messages",
            "paper avg messages",
            "max messages",
        ],
        rows=rows,
        config={
            "profile": profile.name,
            "core": core,
            "n_searches": n_searches,
            "p_online": profile.p_online,
            "query_key_length": profile.query_key_length,
            "refmax": profile.refmax,
        },
        notes=(
            "Expected shape: success rate at or above the eq.(3) analytical "
            "bound (backtracking helps) and close to 100%; a handful of "
            "messages per search."
        ),
    )
