"""T2 (§5.1, second table): construction cost vs. maximal path length.

N = 500 peers, maxl swept 2..7.  Without recursion the cost roughly doubles
per extra level (ratio ``e_maxl / e_{maxl-1}`` ≈ 2); with recmax = 2 the
growth is much flatter.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, run_experiment_points
from repro.experiments.table1_construction_scaling import construction_cost

EXPERIMENT_ID = "table2"

#: Paper values: maxl -> (e at recmax=0, e at recmax=2).
PAPER_ROWS = {
    2: (4893, 5590),
    3: (9780, 7289),
    4: (18071, 8215),
    5: (35526, 13298),
    6: (72657, 17797),
    7: (171770, 27998),
}


def run(
    *,
    n_peers: int = 500,
    maxl_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    recmax_values: Sequence[int] = (0, 2),
    refmax: int = 1,
    seed: int = 2,
    jobs: int | None = 1,
) -> ExperimentResult:
    """Reproduce T2: ``e``, ``e/N`` and the level-to-level growth ratio."""
    headers = ["maxl"]
    for recmax in recmax_values:
        headers += [
            f"e (recmax={recmax})",
            f"e/N (recmax={recmax})",
            f"ratio (recmax={recmax})",
            f"paper e (recmax={recmax})",
        ]
    points = [
        {"n_peers": n_peers, "maxl": maxl, "refmax": refmax,
         "recmax": recmax, "seed": seed}
        for maxl in maxl_values
        for recmax in recmax_values
    ]
    outcomes = run_experiment_points(construction_cost, points, jobs=jobs)
    exchanges_at = {
        (point["maxl"], point["recmax"]): exchanges
        for point, (exchanges, _converged) in zip(points, outcomes)
    }
    rows: list[list[object]] = []
    previous: dict[int, int] = {}
    for maxl in maxl_values:
        row: list[object] = [maxl]
        for recmax in recmax_values:
            exchanges = exchanges_at[(maxl, recmax)]
            ratio = (
                exchanges / previous[recmax] if recmax in previous and previous[recmax]
                else None
            )
            paper = PAPER_ROWS.get(maxl)
            row += [
                exchanges,
                exchanges / n_peers,
                ratio,
                paper[0 if recmax == 0 else 1] if paper else None,
            ]
            previous[recmax] = exchanges
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=f"Construction cost vs. maxl (N={n_peers}, refmax={refmax})",
        headers=headers,
        rows=rows,
        config={
            "n_peers": n_peers,
            "maxl_values": list(maxl_values),
            "recmax_values": list(recmax_values),
            "refmax": refmax,
            "seed": seed,
        },
        notes=(
            "Expected shape: ratio ~2 per level at recmax=0 (exponential in "
            "maxl), substantially flatter at recmax=2."
        ),
    )
