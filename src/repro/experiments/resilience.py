"""R1: §4 search-success formula under injected faults (measured vs analytic).

Eq. (3) predicts search success ``(1 - (1 - p)^refmax)^k`` for per-contact
availability *p*, ``refmax`` references per level and key length *k*.  This
sweep validates the formula empirically over a ``p × refmax`` grid, per
point:

``model`` / ``model+repair`` / ``model+retry``
    A Monte Carlo sampler of the formula's own probability model over the
    *real* routing tables: each trial draws *k* independent level-survival
    events (does any of the level's ``refmax`` references answer?) against
    the live churn oracle.  This isolates exactly what eq. (3) computes —
    the full Fig. 2 search is *better* than the formula (backtracking
    re-enters subtrees through other branches; routing also skips levels
    it never diverges at), so only the level model can match it within a
    tight tolerance.  The ``repair`` variant feeds every contact outcome
    to a :class:`repro.faults.RefHealer` (evictions must be repaired back
    to the analytic curve); the ``retry`` variant re-contacts each
    reference ``attempts`` times, which eq. (3) absorbs as
    ``refmax -> attempts * refmax``.

``crash`` / ``crash+repair``
    The same sampler after a :class:`repro.faults.FaultInjector` crashes a
    fraction of peers permanently: without repair, success falls below the
    analytic curve (dead references burn contact attempts); with the
    healer plus a warm-up phase, dead references are evicted and refilled
    from live replicas, recovering most of the gap.

``dfs``
    End-to-end Fig. 2 searches under the same churn, reported against the
    formula's *lower bound* property (measured >= analytic - tolerance).

Deviation checks (``check_deviations`` / ``--check``) enforce the
acceptance tolerances; the sweep is deterministic for a given profile at
any ``--jobs`` (every trial derives its randomness from per-point seeds).

Run: ``PYTHONPATH=src python -m repro.experiments.resilience --scale smoke --check``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import search_success_probability
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.search import SearchEngine
from repro.experiments.common import ExperimentResult, run_experiment_points
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.repair import RefHealer
from repro.net.transport import LocalTransport
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder
from repro.sim.churn import BernoulliChurn
from repro.sim.persistence import grid_from_dict, grid_to_dict

EXPERIMENT_ID = "resilience"

__all__ = [
    "EXPERIMENT_ID",
    "ResilienceProfile",
    "resilience_profile",
    "run",
    "check_deviations",
]


@dataclass(frozen=True)
class ResilienceProfile:
    """Sizing of one resilience sweep."""

    name: str
    maxl: int
    p_values: tuple[float, ...]
    refmax_values: tuple[int, ...]
    trials: int
    dfs_searches: int
    crash_fraction: float
    tolerance: float
    evict_after: int = 3
    retry_attempts: int = 2
    warmup_trials: int = 600
    seed: int = 20020104

    @property
    def key_length(self) -> int:
        """Eq. (3)'s *k*: one bit short of ``maxl`` (as in §5.2)."""
        return self.maxl - 1

    def n_peers(self, refmax: int) -> int:
        """Population sized so every level can hold ``refmax`` references."""
        return 2**self.maxl * max(4, refmax)


_PROFILES: dict[str, ResilienceProfile] = {
    # Unit-test sizing: seconds, loose tolerance.
    "tiny": ResilienceProfile(
        name="tiny",
        maxl=3,
        p_values=(0.5,),
        refmax_values=(2, 3),
        trials=400,
        dfs_searches=150,
        crash_fraction=0.3,
        tolerance=0.10,
        warmup_trials=300,
    ),
    # CI smoke: the acceptance gate at 5% tolerance.
    "smoke": ResilienceProfile(
        name="smoke",
        maxl=4,
        p_values=(0.3, 0.6),
        refmax_values=(3, 6),
        trials=1_500,
        dfs_searches=400,
        crash_fraction=0.25,
        tolerance=0.05,
    ),
    # The full curve at the 2% acceptance tolerance.
    "full": ResilienceProfile(
        name="full",
        maxl=5,
        p_values=(0.3, 0.5, 0.7),
        refmax_values=(3, 5, 8),
        trials=8_000,
        dfs_searches=1_500,
        crash_fraction=0.25,
        tolerance=0.02,
        warmup_trials=2_000,
    ),
}


def resilience_profile(scale: str = "smoke") -> ResilienceProfile:
    """The sweep profile for *scale* (``tiny`` / ``smoke`` / ``full``)."""
    if scale not in _PROFILES:
        raise ValueError(
            f"unknown resilience scale {scale!r}; choose one of {sorted(_PROFILES)}"
        )
    return _PROFILES[scale]


# -- grid preparation ---------------------------------------------------------


def _complement_prefix(peer, level: int) -> str:
    """Path prefix a valid level-*level* reference must carry (§2)."""
    bit = peer.path[level - 1]
    return peer.prefix(level - 1) + ("1" if bit == "0" else "0")


def _saturate_refs(grid: PGrid) -> None:
    """Top every materialized routing level up to ``refmax`` references.

    Eq. (3) presumes ``refmax`` references per level; construction leaves
    some levels short (recursion budget).  Candidates come from the replica
    directory in deterministic order, respecting the §2 invariant.
    """
    refmax = grid.config.refmax
    for peer in grid.peers():
        for level in range(1, peer.depth + 1):
            current = peer.routing.refs(level)
            if len(current) >= refmax:
                continue
            target = _complement_prefix(peer, level)
            have = set(current)
            for candidate in grid.replicas_for_key(target):
                if candidate == peer.address or candidate in have:
                    continue
                if not grid.peer(candidate).path.startswith(target):
                    continue
                if not peer.routing.add_ref(level, candidate):
                    break


def _build_point_grid(
    *, maxl: int, refmax: int, n_peers: int, seed: int
) -> dict:
    """Build + saturate one converged grid; return its snapshot dict."""
    config = PGridConfig(maxl=maxl, refmax=refmax, recmax=2, recursion_fanout=2)
    grid = PGrid(config, rng=rngmod.derive(seed, "construction"))
    grid.add_peers(n_peers)
    GridBuilder(grid).build(threshold_fraction=0.985, max_exchanges=4_000_000)
    _saturate_refs(grid)
    return grid_to_dict(grid)


# -- the level-model Monte Carlo sampler --------------------------------------


def _measure_level_model(
    grid_data: dict,
    *,
    key_length: int,
    refmax: int,
    p_online: float,
    trials: int,
    seed: int,
    stream: str,
    repair: bool,
    evict_after: int,
    attempts: int = 1,
    crash_fraction: float = 0.0,
    warmup_trials: int = 0,
) -> float:
    """Fraction of trials in which all *key_length* levels survived.

    One trial draws, for each level ``1..k``, a random requester and asks
    whether any of its ``refmax`` references at that level answers a
    contact (each contact an independent availability coin, re-tried
    ``attempts`` times).  This samples exactly the product eq. (3)
    computes, over the real routing tables.
    """
    grid = grid_from_dict(grid_data, rng=rngmod.derive(seed, f"{stream}-grid"))
    churn = BernoulliChurn(p_online, rngmod.derive(seed, f"{stream}-churn"))
    crashed: frozenset[int] = frozenset()
    if crash_fraction > 0.0:
        injector = FaultInjector(
            LocalTransport(grid),
            FaultPlan(seed=rngmod.derive_seed(seed, f"{stream}-faults")),
        )
        injector.crash_random(crash_fraction)
        injector.install_oracle(churn)
        crashed = injector.crashed
    else:
        grid.online_oracle = churn
    healer = RefHealer(grid, evict_after=evict_after) if repair else None
    rng = rngmod.derive(seed, f"{stream}-trials")
    eligible = [
        address
        for address in grid.addresses()
        if address not in crashed and grid.peer(address).depth >= key_length
    ]

    def one_trial() -> bool:
        survived_all = True
        for level in range(1, key_length + 1):
            owner = eligible[rng.randrange(len(eligible))]
            peer = grid.peer(owner)
            refs = peer.routing.refs(level)[:refmax]
            rng.shuffle(refs)
            level_ok = False
            for ref in refs:
                answered = False
                for _ in range(attempts):
                    if grid.has_peer(ref) and grid.is_online(ref):
                        answered = True
                        break
                    if healer is not None and healer.record_failure(
                        owner, level, ref
                    ):
                        break  # evicted mid-retry: the slot is gone
                if answered:
                    if healer is not None:
                        healer.record_success(owner, level, ref)
                    level_ok = True
                    break
            if not level_ok:
                survived_all = False
                # Keep contacting the remaining levels so the healer sees
                # the same contact pressure on every level regardless of
                # where earlier levels failed (and eq. (3)'s independent-
                # levels product is sampled without early-exit bias).
        return survived_all

    for _ in range(warmup_trials):
        one_trial()
    successes = sum(one_trial() for _ in range(trials))
    return successes / trials


def _measure_dfs(
    grid_data: dict,
    *,
    key_length: int,
    p_online: float,
    searches: int,
    seed: int,
) -> float:
    """End-to-end Fig. 2 success rate under per-contact churn."""
    grid = grid_from_dict(grid_data, rng=rngmod.derive(seed, "dfs-grid"))
    grid.online_oracle = BernoulliChurn(
        p_online, rngmod.derive(seed, "dfs-churn")
    )
    engine = SearchEngine(grid)
    rng = rngmod.derive(seed, "dfs-queries")
    addresses = grid.addresses()
    hits = 0
    for _ in range(searches):
        start = addresses[rng.randrange(len(addresses))]
        key = "".join(rng.choice("01") for _ in range(key_length))
        hits += engine.query_from(start, key).found
    return hits / searches


# -- one sweep point (module-level: picklable for --jobs) ---------------------


def _resilience_point(
    *,
    maxl: int,
    p_online: float,
    refmax: int,
    n_peers: int,
    trials: int,
    dfs_searches: int,
    crash_fraction: float,
    evict_after: int,
    retry_attempts: int,
    warmup_trials: int,
    seed: int,
) -> list:
    """Measure every mode at one (p, refmax) point; returns the table row."""
    key_length = maxl - 1
    grid_data = _build_point_grid(
        maxl=maxl, refmax=refmax, n_peers=n_peers, seed=seed
    )
    common = dict(
        key_length=key_length,
        refmax=refmax,
        p_online=p_online,
        trials=trials,
        seed=seed,
        evict_after=evict_after,
    )
    analytic = search_success_probability(p_online, refmax, key_length)
    analytic_retry = search_success_probability(
        p_online, retry_attempts * refmax, key_length
    )
    model = _measure_level_model(grid_data, stream="model", repair=False, **common)
    model_repair = _measure_level_model(
        grid_data, stream="repair", repair=True, **common
    )
    model_retry = _measure_level_model(
        grid_data, stream="retry", repair=False, attempts=retry_attempts, **common
    )
    crash = _measure_level_model(
        grid_data,
        stream="crash",
        repair=False,
        crash_fraction=crash_fraction,
        **common,
    )
    crash_repair = _measure_level_model(
        grid_data,
        stream="crash-repair",
        repair=True,
        crash_fraction=crash_fraction,
        warmup_trials=warmup_trials,
        **common,
    )
    dfs = _measure_dfs(
        grid_data,
        key_length=key_length,
        p_online=p_online,
        searches=dfs_searches,
        seed=seed,
    )
    return [
        p_online,
        refmax,
        analytic,
        model,
        model_repair,
        analytic_retry,
        model_retry,
        crash,
        crash_repair,
        dfs,
    ]


HEADERS = [
    "p",
    "refmax",
    "eq.(3)",
    "model",
    "model+repair",
    "eq.(3) retry",
    "model+retry",
    "crash",
    "crash+repair",
    "dfs",
]


def run(
    profile: ResilienceProfile | None = None,
    *,
    scale: str = "smoke",
    jobs: int | None = 1,
) -> ExperimentResult:
    """Run the resilience sweep; bit-identical rows at any *jobs*."""
    profile = profile or resilience_profile(scale)
    points = [
        {
            "maxl": profile.maxl,
            "p_online": p,
            "refmax": refmax,
            "n_peers": profile.n_peers(refmax),
            "trials": profile.trials,
            "dfs_searches": profile.dfs_searches,
            "crash_fraction": profile.crash_fraction,
            "evict_after": profile.evict_after,
            "retry_attempts": profile.retry_attempts,
            "warmup_trials": profile.warmup_trials,
            "seed": rngmod.derive_seed(profile.seed, f"point-{p}-{refmax}"),
        }
        for p in profile.p_values
        for refmax in profile.refmax_values
    ]
    rows = run_experiment_points(_resilience_point, points, jobs=jobs)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=(
            f"§4 success formula under injected faults "
            f"(k={profile.key_length}, {profile.trials} trials/point, "
            f"crash fraction {profile.crash_fraction:.0%})"
        ),
        headers=HEADERS,
        rows=rows,
        config={
            "profile": profile.name,
            "maxl": profile.maxl,
            "key_length": profile.key_length,
            "p_values": list(profile.p_values),
            "refmax_values": list(profile.refmax_values),
            "trials": profile.trials,
            "dfs_searches": profile.dfs_searches,
            "crash_fraction": profile.crash_fraction,
            "tolerance": profile.tolerance,
            "evict_after": profile.evict_after,
            "retry_attempts": profile.retry_attempts,
            "warmup_trials": profile.warmup_trials,
            "seed": profile.seed,
        },
        notes=(
            "model/model+repair/model+retry must match their analytic "
            "columns within the profile tolerance; crash+repair must beat "
            "crash; dfs is bounded below by eq.(3) (backtracking helps)."
        ),
    )


def check_deviations(result: ExperimentResult) -> list[str]:
    """Tolerance violations in *result* (empty list = sweep passes).

    Enforces the acceptance criteria: the level-model columns (plain,
    repair, retry) within ``tolerance`` of their analytic values, repair
    no worse than no-repair under crashes, and end-to-end DFS at or above
    the analytic lower bound (minus tolerance for sampling noise).
    """
    tol = result.config["tolerance"]
    violations: list[str] = []
    for row in result.rows:
        (p, refmax, analytic, model, model_repair, analytic_retry,
         model_retry, crash, crash_repair, dfs) = row
        where = f"(p={p}, refmax={refmax})"
        for label, measured, expected in (
            ("model", model, analytic),
            ("model+repair", model_repair, analytic),
            ("model+retry", model_retry, analytic_retry),
        ):
            if abs(measured - expected) > tol:
                violations.append(
                    f"{where} {label}={measured:.4f} deviates from "
                    f"analytic {expected:.4f} by more than {tol}"
                )
        if crash_repair + tol < crash:
            violations.append(
                f"{where} crash+repair={crash_repair:.4f} worse than "
                f"crash={crash:.4f}"
            )
        if dfs < analytic - tol:
            violations.append(
                f"{where} dfs={dfs:.4f} below the eq.(3) lower bound "
                f"{analytic:.4f} - {tol}"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    """CLI: run the sweep, optionally save and enforce tolerances."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Validate the §4 success formula under injected faults."
    )
    parser.add_argument(
        "--scale", choices=sorted(_PROFILES), default="smoke",
        help="sweep profile (default: smoke)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel point workers (results identical at any value)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any tolerance is violated",
    )
    parser.add_argument(
        "--save", metavar="DIR", default=None,
        help="write CSV/JSON results into DIR",
    )
    args = parser.parse_args(argv)
    result = run(scale=args.scale, jobs=args.jobs)
    print(result.to_text(float_digits=4))
    if args.save:
        result.save(args.save)
    if args.check:
        violations = check_deviations(result)
        if violations:
            for violation in violations:
                print(f"TOLERANCE VIOLATION: {violation}")
            return 1
        print("all tolerance checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
