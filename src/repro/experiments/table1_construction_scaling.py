"""T1 (§5.1, first table): construction cost vs. number of peers.

The paper varies N from 200 to 1000 (maxl = 6, refmax = 1, threshold 99% of
maxl) and reports the number of exchange calls ``e`` for recursion bounds 0
and 2: ``e`` grows linearly in N, i.e. ``e/N`` is roughly constant
(≈ 70–80 for recmax = 0, ≈ 25 for recmax = 2).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.experiments.common import ExperimentResult, run_experiment_points
from repro.sim import rng as rngmod
from repro.sim.builder import GridBuilder

EXPERIMENT_ID = "table1"

#: The paper's reported values, for side-by-side comparison.
PAPER_ROWS = {
    (200, 0): 15942,
    (400, 0): 27632,
    (600, 0): 43435,
    (800, 0): 59212,
    (1000, 0): 74619,
    (200, 2): 4937,
    (400, 2): 10383,
    (600, 2): 15228,
    (800, 2): 18580,
    (1000, 2): 25162,
}


def construction_cost(
    n_peers: int,
    *,
    maxl: int = 6,
    refmax: int = 1,
    recmax: int = 0,
    recursion_fanout: int | None = None,
    threshold_fraction: float = 0.99,
    seed: int = 0,
    max_exchanges: int = 5_000_000,
) -> tuple[int, bool]:
    """Build one grid to threshold; return (exchange calls, converged)."""
    config = PGridConfig(
        maxl=maxl, refmax=refmax, recmax=recmax, recursion_fanout=recursion_fanout
    )
    grid = PGrid(
        config,
        rng=rngmod.derive(seed, f"t1-n{n_peers}-rec{recmax}-ref{refmax}-l{maxl}"),
    )
    grid.add_peers(n_peers)
    report = GridBuilder(grid).build(
        threshold_fraction=threshold_fraction, max_exchanges=max_exchanges
    )
    return report.exchanges, report.converged


def run(
    *,
    peer_counts: Sequence[int] = (200, 400, 600, 800, 1000),
    recmax_values: Sequence[int] = (0, 2),
    maxl: int = 6,
    refmax: int = 1,
    seed: int = 1,
    jobs: int | None = 1,
) -> ExperimentResult:
    """Reproduce T1: rows ``N | e, e/N`` per recursion bound.

    Each (N, recmax) point is an independent trial with its own derived
    RNG stream; ``jobs`` > 1 evaluates the points on a process pool with
    bit-identical results.
    """
    headers = ["N"]
    for recmax in recmax_values:
        headers += [
            f"e (recmax={recmax})",
            f"e/N (recmax={recmax})",
            f"paper e (recmax={recmax})",
        ]
    points = [
        {"n_peers": n_peers, "maxl": maxl, "refmax": refmax,
         "recmax": recmax, "seed": seed}
        for n_peers in peer_counts
        for recmax in recmax_values
    ]
    outcomes = run_experiment_points(construction_cost, points, jobs=jobs)
    exchanges_at = {
        (point["n_peers"], point["recmax"]): exchanges
        for point, (exchanges, _converged) in zip(points, outcomes)
    }
    rows: list[list[object]] = []
    for n_peers in peer_counts:
        row: list[object] = [n_peers]
        for recmax in recmax_values:
            exchanges = exchanges_at[(n_peers, recmax)]
            row += [
                exchanges,
                exchanges / n_peers,
                PAPER_ROWS.get((n_peers, recmax)),
            ]
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Construction cost vs. community size (maxl=6, refmax=1)",
        headers=headers,
        rows=rows,
        config={
            "peer_counts": list(peer_counts),
            "recmax_values": list(recmax_values),
            "maxl": maxl,
            "refmax": refmax,
            "seed": seed,
        },
        notes=(
            "e counts calls to the exchange function until average path "
            "length reaches 99% of maxl; expected shape: e/N roughly "
            "constant in N, recmax=2 about 3x cheaper than recmax=0."
        ),
    )
