"""The probe interface: runtime visibility hooks for every engine.

All engines (:class:`~repro.core.search.SearchEngine`,
:class:`~repro.core.exchange.ExchangeEngine`,
:class:`~repro.core.updates.UpdateEngine` / ``ReadEngine``,
:class:`~repro.core.membership.MembershipEngine`,
:class:`~repro.core.shortcuts.ShortcutSearchEngine`) and the simulated
transport (:class:`~repro.net.transport.LocalTransport`) accept a
keyword-only ``probe``.  Since the sans-I/O refactor the decision points
live in the :mod:`repro.protocol` machines, which emit
:class:`~repro.protocol.effects.Record` effects (only when the driver's
``Context.observed`` flag is set); the direct driver translates each
``Record`` into the matching hook call here — every successful contact
(a *message* in the §5.2 cost model), every offline miss, every
backtrack of the depth-first search, every CASE action of the exchange
protocol — while the engines themselves fire the operation-level
start/end hooks.

Design constraints:

* **Zero overhead when disabled.**  With ``probe=None`` the machines run
  with ``observed=False`` and never construct a ``Record``; an
  uninstrumented run pays one flag check per decision point, nothing
  more.
* **Observation must not perturb the simulation.**  Probes receive plain
  values (addresses, levels, counters), never mutable engine state, and
  must not draw from the grid's RNG.  The property tests assert that an
  instrumented run is bit-identical (results *and* RNG stream) to an
  uninstrumented one.

:class:`Probe` is a base class whose hooks are all no-ops; implementations
override only what they need (see :class:`~repro.obs.metrics.MetricsProbe`
and :class:`~repro.obs.trace.TraceRecorder`).  :class:`CompositeProbe`
fans every hook out to several probes (e.g. metrics + trace in one run).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Probe", "CompositeProbe"]

# ``Address`` is ``int`` in repro.core.peer; obs stays dependency-light and
# does not import the core layer.
Address = int


class Probe:
    """No-op observability hooks; subclass and override selectively."""

    # -- search (Fig. 2 depth-first, breadth-first, range) --------------------

    def on_search_start(self, kind: str, start: Address, query: str) -> None:
        """A search of *kind* (``dfs``/``bfs``/``range``) begins at *start*."""

    def on_search_end(
        self,
        kind: str,
        start: Address,
        query: str,
        *,
        found: bool,
        messages: int,
        failed_attempts: int,
        latency: float = 0.0,
    ) -> None:
        """The search finished with the given aggregate cost."""

    def on_forward(self, source: Address, target: Address, level: int) -> None:
        """A successful contact: *source* forwarded the query to *target*.

        One ``on_forward`` is one *message* in the paper's cost model.
        """

    def on_offline_miss(self, source: Address, target: Address, level: int) -> None:
        """A contact attempt hit an offline (or departed) peer."""

    def on_backtrack(self, peer: Address, level: int) -> None:
        """A forwarded subtree returned empty; *peer* tries the next ref."""

    def on_responsible(self, peer: Address, level: int) -> None:
        """The query terminated: *peer* is responsible for the suffix."""

    # -- shortcut cache --------------------------------------------------------

    def on_shortcut(self, event: str, start: Address, query: str) -> None:
        """Shortcut cache activity: ``hit``, ``miss`` or ``invalidate``."""

    # -- exchange (Fig. 3 construction) ---------------------------------------

    def on_meeting(self, peer1: Address, peer2: Address) -> None:
        """A random meeting starts (top-level ``exchange`` call)."""

    def on_exchange_case(
        self, case: str, peer1: Address, peer2: Address, lc: int, depth: int
    ) -> None:
        """One CASE action fired: ``case1``/``case2``/``case3``/``case4``
        or ``replicas`` (identical complete paths, buddy linking)."""

    # -- updates / reads -------------------------------------------------------

    def on_update(
        self,
        key: str,
        strategy: str,
        *,
        reached: int,
        messages: int,
        failed_attempts: int,
    ) -> None:
        """An update propagation finished, reaching *reached* replicas."""

    def on_read(
        self,
        key: str,
        *,
        success: bool,
        messages: int,
        failed_attempts: int,
        repetitions: int,
    ) -> None:
        """A read strategy finished."""

    # -- replication (query-load-driven balancing) -----------------------------

    def on_replication(
        self, event: str, address: Address, old_path: str, new_path: str
    ) -> None:
        """The replica balancer changed *address*'s position.

        *event* is currently always ``convert``: the peer retracted from
        its ``old_path`` replica group and became a replica of
        ``new_path`` (see :mod:`repro.replication`).
        """

    # -- membership -----------------------------------------------------------

    def on_join(self, address: Address, *, meetings: int, exchanges: int) -> None:
        """A newcomer finished bootstrapping."""

    def on_leave(self, address: Address, *, entries_handed_over: int) -> None:
        """A peer departed gracefully."""

    def on_repair(
        self,
        address: Address,
        *,
        dead_refs_dropped: int,
        refs_added: int,
        messages: int,
    ) -> None:
        """A repair pass over one peer's routing table finished."""

    # -- transport ------------------------------------------------------------

    def on_transport(
        self, kind: str, source: Address, target: Address, status: str
    ) -> None:
        """A transport-level send: *status* is ``delivered``, ``dropped``
        or ``offline``; *kind* is the message kind's wire name."""

    # -- async runtime (per-node mailboxes) -----------------------------------

    def on_mailbox(
        self, event: str, address: Address, *, depth: int, wait: float = 0.0
    ) -> None:
        """A mailbox event on the async transport.

        *event* is ``enqueue`` (a message entered *address*'s mailbox;
        *depth* is the queue depth right after the put) or ``dequeue``
        (the node's worker picked a message up; *depth* is the depth
        after the get and *wait* the message's queue latency in wall
        seconds).  Depth growth and rising waits are the backpressure
        signals of an overloaded node.
        """

    # -- batch query plane (aggregate, per wave) -------------------------------

    def on_batch_wave(
        self, kind: str, *, wave: int, active: int, contacts: int, offline: int
    ) -> None:
        """One vectorized wave of the batch query engine advanced.

        Fidelity note: the batch plane reports aggregate wave counters
        (*contacts* attempted, *offline* misses, *active* queries still
        in flight) instead of the object core's per-hop
        ``on_forward``/``on_backtrack``/``on_offline_miss`` stream —
        per-hop events for 10^5 concurrent queries would serialize the
        kernels back into Python.  Use the object core for hop traces.
        """

    def on_batch_search(
        self,
        kind: str,
        *,
        queries: int,
        found: int,
        messages: int,
        failed_attempts: int,
    ) -> None:
        """A whole batch of searches completed (aggregate totals)."""


class CompositeProbe(Probe):
    """Fans every hook out to an ordered sequence of probes."""

    def __init__(self, probes: Iterable[Probe]) -> None:
        self.probes: Sequence[Probe] = tuple(probes)

    def on_search_start(self, kind: str, start: Address, query: str) -> None:
        for probe in self.probes:
            probe.on_search_start(kind, start, query)

    def on_search_end(
        self,
        kind: str,
        start: Address,
        query: str,
        *,
        found: bool,
        messages: int,
        failed_attempts: int,
        latency: float = 0.0,
    ) -> None:
        for probe in self.probes:
            probe.on_search_end(
                kind,
                start,
                query,
                found=found,
                messages=messages,
                failed_attempts=failed_attempts,
                latency=latency,
            )

    def on_forward(self, source: Address, target: Address, level: int) -> None:
        for probe in self.probes:
            probe.on_forward(source, target, level)

    def on_offline_miss(self, source: Address, target: Address, level: int) -> None:
        for probe in self.probes:
            probe.on_offline_miss(source, target, level)

    def on_backtrack(self, peer: Address, level: int) -> None:
        for probe in self.probes:
            probe.on_backtrack(peer, level)

    def on_responsible(self, peer: Address, level: int) -> None:
        for probe in self.probes:
            probe.on_responsible(peer, level)

    def on_shortcut(self, event: str, start: Address, query: str) -> None:
        for probe in self.probes:
            probe.on_shortcut(event, start, query)

    def on_meeting(self, peer1: Address, peer2: Address) -> None:
        for probe in self.probes:
            probe.on_meeting(peer1, peer2)

    def on_exchange_case(
        self, case: str, peer1: Address, peer2: Address, lc: int, depth: int
    ) -> None:
        for probe in self.probes:
            probe.on_exchange_case(case, peer1, peer2, lc, depth)

    def on_update(
        self,
        key: str,
        strategy: str,
        *,
        reached: int,
        messages: int,
        failed_attempts: int,
    ) -> None:
        for probe in self.probes:
            probe.on_update(
                key,
                strategy,
                reached=reached,
                messages=messages,
                failed_attempts=failed_attempts,
            )

    def on_read(
        self,
        key: str,
        *,
        success: bool,
        messages: int,
        failed_attempts: int,
        repetitions: int,
    ) -> None:
        for probe in self.probes:
            probe.on_read(
                key,
                success=success,
                messages=messages,
                failed_attempts=failed_attempts,
                repetitions=repetitions,
            )

    def on_replication(
        self, event: str, address: Address, old_path: str, new_path: str
    ) -> None:
        for probe in self.probes:
            probe.on_replication(event, address, old_path, new_path)

    def on_join(self, address: Address, *, meetings: int, exchanges: int) -> None:
        for probe in self.probes:
            probe.on_join(address, meetings=meetings, exchanges=exchanges)

    def on_leave(self, address: Address, *, entries_handed_over: int) -> None:
        for probe in self.probes:
            probe.on_leave(address, entries_handed_over=entries_handed_over)

    def on_repair(
        self,
        address: Address,
        *,
        dead_refs_dropped: int,
        refs_added: int,
        messages: int,
    ) -> None:
        for probe in self.probes:
            probe.on_repair(
                address,
                dead_refs_dropped=dead_refs_dropped,
                refs_added=refs_added,
                messages=messages,
            )

    def on_transport(
        self, kind: str, source: Address, target: Address, status: str
    ) -> None:
        for probe in self.probes:
            probe.on_transport(kind, source, target, status)

    def on_mailbox(
        self, event: str, address: Address, *, depth: int, wait: float = 0.0
    ) -> None:
        for probe in self.probes:
            probe.on_mailbox(event, address, depth=depth, wait=wait)

    def on_batch_wave(
        self, kind: str, *, wave: int, active: int, contacts: int, offline: int
    ) -> None:
        for probe in self.probes:
            probe.on_batch_wave(
                kind, wave=wave, active=active, contacts=contacts, offline=offline
            )

    def on_batch_search(
        self,
        kind: str,
        *,
        queries: int,
        found: int,
        messages: int,
        failed_attempts: int,
    ) -> None:
        for probe in self.probes:
            probe.on_batch_search(
                kind,
                queries=queries,
                found=found,
                messages=messages,
                failed_attempts=failed_attempts,
            )
