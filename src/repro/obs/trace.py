"""Hop-level tracing: record one operation's decision points end-to-end.

:class:`TraceRecorder` is a :class:`~repro.obs.probe.Probe` that captures
every hook invocation as a structured :class:`TraceEvent`, so a single
search or exchange can be replayed and audited: which peer contacted
which, at what routing level, where the depth-first search backtracked,
which contacts hit offline peers, and which CASE actions an exchange
cascade fired.

The recorder is the ground truth the cost model is validated against:
for a depth-first search, ``messages == len(events_of(FORWARD))`` and
``failed_attempts == len(events_of(OFFLINE_MISS))`` — the test suite
asserts these reconstruct the :class:`~repro.core.search.SearchResult`
tallies exactly.

A ``limit`` bounds memory for long runs (e.g. tracing a full
construction): once full, further events are counted in ``dropped`` but
not stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.probe import Address, Probe

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded decision point.

    ``source``/``target`` are peer addresses where applicable (−1 when
    the hook carries no such operand); ``detail`` holds the hook-specific
    extras (query, case label, counters...).
    """

    seq: int
    kind: str
    source: Address = -1
    target: Address = -1
    level: int = -1
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One human-readable line (the CLI ``--trace`` output format)."""
        parts = [f"#{self.seq:<4} {self.kind}"]
        if self.source >= 0:
            parts.append(f"from={self.source}")
        if self.target >= 0:
            parts.append(f"to={self.target}")
        if self.level >= 0:
            parts.append(f"level={self.level}")
        parts.extend(f"{key}={value}" for key, value in self.detail.items())
        return " ".join(parts)


class TraceRecorder(Probe):
    """Records probe hooks as an ordered event log."""

    # Event kinds (one per probe hook family).
    SEARCH_START = "search_start"
    SEARCH_END = "search_end"
    FORWARD = "forward"
    OFFLINE_MISS = "offline_miss"
    BACKTRACK = "backtrack"
    RESPONSIBLE = "responsible"
    SHORTCUT = "shortcut"
    MEETING = "meeting"
    EXCHANGE_CASE = "exchange_case"
    UPDATE = "update"
    READ = "read"
    JOIN = "join"
    LEAVE = "leave"
    REPAIR = "repair"
    TRANSPORT = "transport"

    def __init__(self, *, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    # -- recording core -----------------------------------------------------------

    def _record(
        self,
        kind: str,
        source: Address = -1,
        target: Address = -1,
        level: int = -1,
        **detail: Any,
    ) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                seq=len(self.events),
                kind=kind,
                source=source,
                target=target,
                level=level,
                detail=detail,
            )
        )

    def clear(self) -> None:
        """Drop all recorded events (reuse the recorder between operations)."""
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    # -- queries ---------------------------------------------------------------

    def events_of(self, kind: str) -> list[TraceEvent]:
        """All events of one *kind*, in order."""
        return [event for event in self.events if event.kind == kind]

    def hop_chain(self) -> list[tuple[Address, Address, int]]:
        """The contact chain: ``(source, target, level)`` per forward hop."""
        return [
            (event.source, event.target, event.level)
            for event in self.events
            if event.kind == self.FORWARD
        ]

    @property
    def message_count(self) -> int:
        """Successful contacts recorded (== §5.2 *messages*)."""
        return sum(1 for event in self.events if event.kind == self.FORWARD)

    @property
    def failed_count(self) -> int:
        """Offline misses recorded (== ``failed_attempts``)."""
        return sum(1 for event in self.events if event.kind == self.OFFLINE_MISS)

    @property
    def backtrack_count(self) -> int:
        """Backtracking steps of the depth-first search."""
        return sum(1 for event in self.events if event.kind == self.BACKTRACK)

    def replay(self) -> Iterator[str]:
        """Human-readable lines for every event, in recorded order."""
        for event in self.events:
            yield event.describe()
        if self.dropped:
            yield f"... {self.dropped} further events dropped (limit={self.limit})"

    def as_dicts(self) -> list[dict[str, Any]]:
        """JSON-friendly copies of all events."""
        return [
            {
                "seq": event.seq,
                "kind": event.kind,
                "source": event.source,
                "target": event.target,
                "level": event.level,
                **({"detail": event.detail} if event.detail else {}),
            }
            for event in self.events
        ]

    # -- probe hooks ---------------------------------------------------------------

    def on_search_start(self, kind: str, start: Address, query: str) -> None:
        self._record(self.SEARCH_START, source=start, search=kind, query=query)

    def on_search_end(
        self,
        kind: str,
        start: Address,
        query: str,
        *,
        found: bool,
        messages: int,
        failed_attempts: int,
        latency: float = 0.0,
    ) -> None:
        self._record(
            self.SEARCH_END,
            source=start,
            search=kind,
            query=query,
            found=found,
            messages=messages,
            failed_attempts=failed_attempts,
        )

    def on_forward(self, source: Address, target: Address, level: int) -> None:
        self._record(self.FORWARD, source=source, target=target, level=level)

    def on_offline_miss(self, source: Address, target: Address, level: int) -> None:
        self._record(self.OFFLINE_MISS, source=source, target=target, level=level)

    def on_backtrack(self, peer: Address, level: int) -> None:
        self._record(self.BACKTRACK, source=peer, level=level)

    def on_responsible(self, peer: Address, level: int) -> None:
        self._record(self.RESPONSIBLE, source=peer, level=level)

    def on_shortcut(self, event: str, start: Address, query: str) -> None:
        self._record(self.SHORTCUT, source=start, event=event, query=query)

    def on_meeting(self, peer1: Address, peer2: Address) -> None:
        self._record(self.MEETING, source=peer1, target=peer2)

    def on_exchange_case(
        self, case: str, peer1: Address, peer2: Address, lc: int, depth: int
    ) -> None:
        self._record(
            self.EXCHANGE_CASE,
            source=peer1,
            target=peer2,
            level=lc,
            case=case,
            depth=depth,
        )

    def on_update(
        self,
        key: str,
        strategy: str,
        *,
        reached: int,
        messages: int,
        failed_attempts: int,
    ) -> None:
        self._record(
            self.UPDATE,
            key=key,
            strategy=strategy,
            reached=reached,
            messages=messages,
            failed_attempts=failed_attempts,
        )

    def on_read(
        self,
        key: str,
        *,
        success: bool,
        messages: int,
        failed_attempts: int,
        repetitions: int,
    ) -> None:
        self._record(
            self.READ,
            key=key,
            success=success,
            messages=messages,
            failed_attempts=failed_attempts,
            repetitions=repetitions,
        )

    def on_join(self, address: Address, *, meetings: int, exchanges: int) -> None:
        self._record(self.JOIN, source=address, meetings=meetings, exchanges=exchanges)

    def on_leave(self, address: Address, *, entries_handed_over: int) -> None:
        self._record(
            self.LEAVE, source=address, entries_handed_over=entries_handed_over
        )

    def on_repair(
        self,
        address: Address,
        *,
        dead_refs_dropped: int,
        refs_added: int,
        messages: int,
    ) -> None:
        self._record(
            self.REPAIR,
            source=address,
            dead_refs_dropped=dead_refs_dropped,
            refs_added=refs_added,
            messages=messages,
        )

    def on_transport(
        self, kind: str, source: Address, target: Address, status: str
    ) -> None:
        self._record(
            self.TRANSPORT, source=source, target=target, message=kind, status=status
        )
