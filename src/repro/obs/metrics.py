"""Metrics registry: counters, gauges and fixed-bucket histograms.

The paper's entire evaluation counts messages, failed contacts, hops and
exchange-case frequencies (§5.1, §5.2); :class:`MetricsRegistry` makes
those first-class instead of being recomputed per experiment script.
:class:`MetricsProbe` translates the :class:`~repro.obs.probe.Probe`
hooks into a standard metric vocabulary (:data:`METRIC_NAMES`), so any
engine run can be measured by attaching one object.

Registries support :meth:`~MetricsRegistry.snapshot` (plain nested dict),
:meth:`~MetricsRegistry.merge` (combine shards from parallel runs or
successive phases) and JSON/CSV export through :mod:`repro.report`.
"""

from __future__ import annotations

from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.obs.probe import Address, Probe

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsProbe",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "METRIC_NAMES",
]

#: Default histogram bucket upper bounds — tuned for hop/message counts,
#: which are small integers with a long tail under churn.  The implicit
#: final bucket is +inf.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 250, 500, 1000,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max side channels.

    Buckets are cumulative-free: ``bucket_counts[i]`` counts observations
    ``<= bounds[i]`` and greater than the previous bound; the final slot
    counts the +inf overflow.  Fixed bounds keep ``merge`` exact.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form (stable keys, JSON-friendly)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "buckets": [
                [bound, count]
                for bound, count in zip((*self.bounds, float("inf")), self.bucket_counts)
            ],
        }

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class MetricsRegistry:
    """Named counters, gauges and histograms with export and merge."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access (get-or-create) ------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        self._check_free(name, self._counters)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        self._check_free(name, self._gauges)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, *, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram under *name* (created on first use with *buckets*)."""
        self._check_free(name, self._histograms)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def _check_free(self, name: str, own: Mapping[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric name {name!r} already registered with a "
                    f"different instrument type"
                )

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(
            [*self._counters, *self._gauges, *self._histograms]
        )

    # -- aggregate views --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Nested plain-dict copy of every instrument's current state."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry.

        Counters and histograms add; gauges take the other registry's
        value (last write wins, matching their single-value semantics).
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(name, buckets=histogram.bounds)
            mine.merge(histogram)

    # -- export through repro.report -------------------------------------------

    def to_rows(self) -> Iterator[tuple[str, str, str, float]]:
        """Flat ``(metric, type, field, value)`` rows for tables/CSV."""
        for name, counter in sorted(self._counters.items()):
            yield (name, "counter", "value", counter.value)
        for name, gauge in sorted(self._gauges.items()):
            yield (name, "gauge", "value", gauge.value)
        for name, histogram in sorted(self._histograms.items()):
            snap = histogram.snapshot()
            for field in ("count", "sum", "min", "max", "mean"):
                yield (name, "histogram", field, snap[field])

    def write_json(self, path: str | Path) -> Path:
        """Dump :meth:`snapshot` as JSON; returns the path."""
        from repro.report.csvout import write_json

        return write_json(path, self.snapshot())

    def write_csv(self, path: str | Path) -> Path:
        """Dump :meth:`to_rows` as CSV; returns the path."""
        from repro.report.csvout import write_csv

        return write_csv(
            path, ("metric", "type", "field", "value"), list(self.to_rows())
        )


#: The standard metric vocabulary emitted by :class:`MetricsProbe`.
#: Search metrics are per search kind (``dfs``, ``bfs``, ``range``).
METRIC_NAMES: tuple[str, ...] = (
    "search.{kind}.count",
    "search.{kind}.found",
    "search.{kind}.messages",
    "search.{kind}.failed_contacts",
    "search.{kind}.hops",            # histogram: messages per search
    "search.{kind}.latency",         # histogram: simulated end-to-end latency
    "search.backtracks",
    "shortcut.hits",
    "shortcut.misses",
    "shortcut.invalidations",
    "exchange.meetings",
    "exchange.case.{case}",          # case1 / case2 / case3 / case4 / replicas
    "update.count",
    "update.messages",
    "update.failed_contacts",
    "update.reached",                # histogram: replicas reached per update
    "read.count",
    "read.success",
    "read.messages",
    "read.failed_contacts",
    "read.repetitions",              # histogram
    "membership.joins",
    "membership.leaves",
    "repair.runs",
    "repair.dead_refs_dropped",
    "repair.refs_added",
    "repair.messages",
    "transport.delivered.{kind}",
    "transport.dropped",
    "transport.offline_failures",
    "mailbox.enqueued",
    "mailbox.depth",                 # histogram: queue depth at enqueue
    "mailbox.wait",                  # histogram: queue latency (wall seconds)
)


class MetricsProbe(Probe):
    """Feeds probe hooks into a :class:`MetricsRegistry`.

    Aggregate counters are updated from the ``on_*_end`` summary hooks
    (not per hop), so the registry totals equal the result-object fields
    exactly — the same invariant the trace recorder is tested for.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- search -----------------------------------------------------------------

    def on_search_end(
        self,
        kind: str,
        start: Address,
        query: str,
        *,
        found: bool,
        messages: int,
        failed_attempts: int,
        latency: float = 0.0,
    ) -> None:
        registry = self.registry
        registry.counter(f"search.{kind}.count").inc()
        if found:
            registry.counter(f"search.{kind}.found").inc()
        registry.counter(f"search.{kind}.messages").inc(messages)
        registry.counter(f"search.{kind}.failed_contacts").inc(failed_attempts)
        registry.histogram(f"search.{kind}.hops").observe(messages)
        if latency:
            registry.histogram(f"search.{kind}.latency").observe(latency)

    def on_backtrack(self, peer: Address, level: int) -> None:
        self.registry.counter("search.backtracks").inc()

    def on_shortcut(self, event: str, start: Address, query: str) -> None:
        name = {
            "hit": "shortcut.hits",
            "miss": "shortcut.misses",
            "invalidate": "shortcut.invalidations",
        }.get(event)
        if name is not None:
            self.registry.counter(name).inc()

    # -- batch query plane --------------------------------------------------------

    def on_batch_wave(
        self, kind: str, *, wave: int, active: int, contacts: int, offline: int
    ) -> None:
        registry = self.registry
        registry.counter(f"{kind}.waves").inc()
        registry.counter(f"{kind}.contacts").inc(contacts)
        registry.counter(f"{kind}.offline").inc(offline)

    def on_batch_search(
        self,
        kind: str,
        *,
        queries: int,
        found: int,
        messages: int,
        failed_attempts: int,
    ) -> None:
        registry = self.registry
        registry.counter(f"{kind}.count").inc(queries)
        registry.counter(f"{kind}.found").inc(found)
        registry.counter(f"{kind}.messages").inc(messages)
        registry.counter(f"{kind}.failed_contacts").inc(failed_attempts)

    # -- exchange ---------------------------------------------------------------

    def on_meeting(self, peer1: Address, peer2: Address) -> None:
        self.registry.counter("exchange.meetings").inc()

    def on_exchange_case(
        self, case: str, peer1: Address, peer2: Address, lc: int, depth: int
    ) -> None:
        self.registry.counter(f"exchange.case.{case}").inc()

    # -- updates / reads ---------------------------------------------------------

    def on_update(
        self,
        key: str,
        strategy: str,
        *,
        reached: int,
        messages: int,
        failed_attempts: int,
    ) -> None:
        registry = self.registry
        registry.counter("update.count").inc()
        registry.counter("update.messages").inc(messages)
        registry.counter("update.failed_contacts").inc(failed_attempts)
        registry.histogram("update.reached").observe(reached)

    def on_read(
        self,
        key: str,
        *,
        success: bool,
        messages: int,
        failed_attempts: int,
        repetitions: int,
    ) -> None:
        registry = self.registry
        registry.counter("read.count").inc()
        if success:
            registry.counter("read.success").inc()
        registry.counter("read.messages").inc(messages)
        registry.counter("read.failed_contacts").inc(failed_attempts)
        registry.histogram("read.repetitions").observe(repetitions)

    # -- membership ---------------------------------------------------------------

    def on_join(self, address: Address, *, meetings: int, exchanges: int) -> None:
        self.registry.counter("membership.joins").inc()

    def on_leave(self, address: Address, *, entries_handed_over: int) -> None:
        self.registry.counter("membership.leaves").inc()

    def on_repair(
        self,
        address: Address,
        *,
        dead_refs_dropped: int,
        refs_added: int,
        messages: int,
    ) -> None:
        registry = self.registry
        registry.counter("repair.runs").inc()
        registry.counter("repair.dead_refs_dropped").inc(dead_refs_dropped)
        registry.counter("repair.refs_added").inc(refs_added)
        registry.counter("repair.messages").inc(messages)

    # -- transport ----------------------------------------------------------------

    def on_transport(
        self, kind: str, source: Address, target: Address, status: str
    ) -> None:
        registry = self.registry
        if status == "delivered":
            registry.counter(f"transport.delivered.{kind}").inc()
        elif status == "dropped":
            registry.counter("transport.dropped").inc()
        elif status == "offline":
            registry.counter("transport.offline_failures").inc()

    # -- async runtime (per-node mailboxes) ----------------------------------------

    def on_mailbox(
        self, event: str, address: Address, *, depth: int, wait: float = 0.0
    ) -> None:
        registry = self.registry
        if event == "enqueue":
            registry.counter("mailbox.enqueued").inc()
            registry.histogram("mailbox.depth").observe(depth)
        elif event == "dequeue":
            registry.histogram("mailbox.wait").observe(wait)
