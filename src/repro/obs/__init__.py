"""Observability layer: probes, metrics registry and hop-level tracing.

Every engine and the simulated transport accept a keyword-only ``probe``
(:class:`Probe`); the two shipped implementations are
:class:`MetricsProbe` (aggregates into a :class:`MetricsRegistry`) and
:class:`TraceRecorder` (structured per-hop event log).  The default
``probe=None`` path costs one identity check per decision point —
observation is strictly opt-in and must never perturb the simulation.

Typical use::

    from repro.obs import MetricsProbe, TraceRecorder

    probe = MetricsProbe()
    engine = SearchEngine(grid, probe=probe)
    engine.query_from(0, "0101")
    print(probe.registry.snapshot())

    trace = TraceRecorder()
    SearchEngine(grid, probe=trace).query_from(0, "0101")
    for line in trace.replay():
        print(line)
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricsProbe,
    MetricsRegistry,
)
from repro.obs.probe import CompositeProbe, Probe
from repro.obs.trace import TraceEvent, TraceRecorder

__all__ = [
    "CompositeProbe",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_NAMES",
    "MetricsProbe",
    "MetricsRegistry",
    "Probe",
    "TraceEvent",
    "TraceRecorder",
]
