"""Distributed prefix text search over a P-Grid (paper §6 extension).

:class:`PrefixTextIndex` publishes words into the grid's leaf-level index
using the order/prefix-preserving :class:`~repro.text.encoding.TextEncoder`
and answers two query shapes:

* :meth:`lookup` — exact word search via the Fig. 2 depth-first search;
* :meth:`prefix_search` — enumerate indexed words starting with a prefix,
  via the breadth-first search (a short prefix maps to a short key whose
  interval spans many leaves, so multiple responsible peers must be
  visited — exactly the trie behaviour §6 sketches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.core.search import SearchEngine
from repro.core.storage import DataItem
from repro.core.updates import UpdateEngine, UpdateStrategy
from repro.text.encoding import TextEncoder


@dataclass
class TextSearchResult:
    """Words found for a query plus its message cost."""

    query: str
    words: list[str]
    messages: int
    found: bool


class PrefixTextIndex:
    """Word index over a constructed P-Grid."""

    def __init__(
        self,
        grid: PGrid,
        *,
        encoder: TextEncoder | None = None,
        search: SearchEngine | None = None,
        key_bits: int | None = None,
    ) -> None:
        self.grid = grid
        self.encoder = encoder or TextEncoder()
        self.search = search or SearchEngine(grid)
        self.updates = UpdateEngine(grid, search=self.search)
        # Keys longer than the deepest peer path are fine (prefix relation
        # still holds), but very long keys waste work; default to a couple
        # of levels past maxl.
        self.key_bits = key_bits if key_bits is not None else (
            grid.config.maxl + 2 * self.encoder.bits_per_char
        )
        if self.key_bits < self.encoder.bits_per_char:
            raise ValueError(
                f"key_bits must fit at least one character "
                f"({self.encoder.bits_per_char} bits), got {self.key_bits}"
            )

    # -- publishing ------------------------------------------------------------

    def word_key(self, word: str) -> str:
        """The binary key a word is indexed under."""
        if not word:
            raise ValueError("cannot index the empty word")
        return self.encoder.encode_truncated(word.lower(), self.key_bits)

    def publish(
        self,
        word: str,
        holder: Address,
        *,
        start: Address | None = None,
        recbreadth: int = 2,
    ) -> int:
        """Index *word* as provided by *holder*; returns messages spent.

        The word itself travels as the item payload so that truncated keys
        can still be filtered exactly at the leaves.
        """
        key = self.word_key(word)
        # Truncated keys can alias several words at the same holder; the
        # item payload therefore accumulates the full word set for the key.
        existing = self.grid.peer(holder).store.get_item(key)
        words = set(existing.value) if existing is not None else set()
        words.add(word.lower())
        item = DataItem(key=key, value=tuple(sorted(words)))
        result = self.updates.publish(
            start if start is not None else holder,
            item,
            holder,
            strategy=UpdateStrategy.BFS,
            recbreadth=recbreadth,
        )
        return result.messages

    def publish_corpus(
        self, words_by_holder: dict[Address, list[str]], *, recbreadth: int = 2
    ) -> int:
        """Publish several holders' word lists; returns total messages."""
        total = 0
        for holder, words in sorted(words_by_holder.items()):
            for word in words:
                total += self.publish(word, holder, recbreadth=recbreadth)
        return total

    # -- queries -----------------------------------------------------------------

    def lookup(self, word: str, *, start: Address) -> TextSearchResult:
        """Exact word lookup via depth-first search."""
        key = self.word_key(word)
        result = self.search.query_from(start, key)
        target = word.lower()
        words = sorted(
            {
                candidate
                for ref in result.data_refs
                for candidate in self._words_of(ref.holder, ref.key)
                if candidate == target
            }
        )
        return TextSearchResult(
            query=word,
            words=words,
            messages=result.messages,
            found=bool(words),
        )

    def prefix_search(
        self, prefix: str, *, start: Address, recbreadth: int = 3
    ) -> TextSearchResult:
        """Enumerate indexed words with the given prefix.

        Uses the breadth-first search so that all leaves under the encoded
        prefix are visited; collected index entries are resolved to words at
        their holders and filtered exactly (truncation can alias words that
        share the truncated prefix).
        """
        if not prefix:
            raise ValueError("prefix must be non-empty")
        key = self.encoder.encode_truncated(prefix.lower(), self.key_bits)
        result = self.search.query_breadth(start, key, recbreadth)
        words: set[str] = set()
        target = prefix.lower()
        for responder in result.responders:
            for ref in self.grid.peer(responder).store.lookup(key):
                for word in self._words_of(ref.holder, ref.key):
                    if word.startswith(target):
                        words.add(word)
        return TextSearchResult(
            query=prefix,
            words=sorted(words),
            messages=result.messages,
            found=bool(words),
        )

    def _words_of(self, holder: Address, key: str) -> tuple[str, ...]:
        """Resolve an index entry to the words stored at its holder."""
        item = self.grid.peer(holder).store.get_item(key)
        if item is None:
            return ()
        if isinstance(item.value, str):
            return (item.value,)
        if isinstance(item.value, (tuple, list)):
            return tuple(word for word in item.value if isinstance(word, str))
        return ()
