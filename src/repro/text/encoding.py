"""Order-preserving text→binary-key encoding (paper §6).

The paper notes that prefix search on text "can be adapted by extending the
{0, 1} alphabet", directly supporting trie search structures.  We take the
equivalent reduction in the other direction: encode each character of a
finite ordered alphabet as a fixed-width bit string (its rank).  Fixed
width gives the two properties the P-Grid needs:

* **order preservation** — ``u < v`` lexicographically iff
  ``encode(u) < encode(v)`` (on equal-length comparisons), so the key space
  remains a totally ordered domain;
* **prefix preservation** — ``u`` is a prefix of ``v`` iff ``encode(u)`` is
  a prefix of ``encode(v)``, so text prefix queries become P-Grid prefix
  queries.
"""

from __future__ import annotations

from repro.errors import InvalidKeyError

#: Default alphabet: space, a-z — enough for the word workloads, 5 bits/char.
DEFAULT_ALPHABET = " abcdefghijklmnopqrstuvwxyz"


class TextEncoder:
    """Fixed-width rank encoder over a finite ordered alphabet."""

    def __init__(self, alphabet: str = DEFAULT_ALPHABET) -> None:
        if len(alphabet) < 2:
            raise ValueError("alphabet needs at least two symbols")
        if len(set(alphabet)) != len(alphabet):
            raise ValueError("alphabet contains duplicate symbols")
        self.alphabet = alphabet
        self._rank = {char: i for i, char in enumerate(alphabet)}
        self.bits_per_char = max(1, (len(alphabet) - 1).bit_length())

    def encode(self, text: str) -> str:
        """Binary key for *text* (``bits_per_char`` bits per character)."""
        try:
            return "".join(
                format(self._rank[char], f"0{self.bits_per_char}b")
                for char in text
            )
        except KeyError as exc:
            raise InvalidKeyError(
                f"character {exc.args[0]!r} not in alphabet"
            ) from None

    def decode(self, key: str) -> str:
        """Inverse of :meth:`encode`; *key* length must be a multiple of
        ``bits_per_char`` and every chunk must be a valid rank."""
        width = self.bits_per_char
        if len(key) % width != 0:
            raise InvalidKeyError(key)
        characters = []
        for offset in range(0, len(key), width):
            chunk = key[offset : offset + width]
            if any(bit not in "01" for bit in chunk):
                raise InvalidKeyError(key)
            rank = int(chunk, 2)
            if rank >= len(self.alphabet):
                raise InvalidKeyError(key)
            characters.append(self.alphabet[rank])
        return "".join(characters)

    def max_chars_for_bits(self, bits: int) -> int:
        """How many characters fit in a *bits*-long key."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return bits // self.bits_per_char

    def encode_truncated(self, text: str, max_bits: int) -> str:
        """Encode *text*, truncated to at most *max_bits* whole characters.

        Useful when the grid's ``maxl`` is shorter than full words: the key
        is the deepest full-character prefix that fits, and exact matching
        happens at the leaf store.
        """
        keep = self.max_chars_for_bits(max_bits)
        return self.encode(text[:keep])
