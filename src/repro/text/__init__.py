"""Prefix text search over P-Grid (§6 trie extension)."""

from repro.text.encoding import DEFAULT_ALPHABET, TextEncoder
from repro.text.trie import PrefixTextIndex, TextSearchResult

__all__ = [
    "DEFAULT_ALPHABET",
    "PrefixTextIndex",
    "TextEncoder",
    "TextSearchResult",
]
