"""Query-load-driven replica balancing (ROADMAP item 4).

The paper's construction yields a *static* replica distribution — roughly
``N / 2^maxl`` peers per leaf path (Fig. 4) — sized analytically in §4
under a uniform-query assumption.  Under skewed (Zipf) traffic that
assumption breaks: a handful of paths absorb most of the load while the
rest idle.  :class:`ReplicaBalancer` redistributes peers between replica
groups using the load measured by
:class:`~repro.replication.tracker.LoadTracker`, in one of three
strategies:

``static``
    The §4 baseline: never act.  Attaching a static balancer is
    bit-identical to attaching none (property-tested, like probes and
    fault plans) — experiments can wire the balancer unconditionally and
    trust the baseline column.

``sqrt``
    Square-root replication (the canonical baseline of the
    search/replication survey literature): per-path replica targets
    proportional to the square root of the measured query rate,
    approached one conversion per meeting.

``adaptive``
    Spiral-Walk-style threshold expansion/retraction: when a replica
    group's per-replica load exceeds ``replicate_threshold``, the hot
    path is replicated onto peers contacted during exchanges — provided
    the contacted peer's own group is *cold* (per-replica load below
    ``retract_floor``) and can spare it.  The cold replica retracts from
    its group exactly like a graceful membership departure: it hands its
    leaf-level index entries to a surviving co-replica (buddies first,
    then the replica directory) before taking over the hot path.

The balancer acts only at exchange-protocol meetings
(:meth:`after_meeting`, invoked by
:class:`~repro.core.exchange.ExchangeEngine` when threaded in) and after
update propagation (:meth:`after_update` via
:class:`~repro.core.updates.UpdateEngine`) — it rides interactions the
protocol performs anyway, as §3 prescribes for everything else.  All of
its choices are deterministic (max/min with path tie-breaks) and it draws
**no RNG**, so a balancer that never fires leaves the grid's protocol
streams untouched.

A conversion leaves stale inbound references to the converted peer —
exactly the staleness churn already creates, which searches tolerate by
backtracking and :class:`~repro.faults.RefHealer` can repair.  Stale
references that used to point *into* the hot region now often land
directly on a hot replica, short-circuiting the descent — that, plus the
higher chance a query starts at a responsible peer, is where the
messages-to-hit win comes from (measured in
``experiments/replication.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.routing import RoutingTable
from repro.core.storage import DataStore
from repro.errors import InvalidConfigError
from repro.obs.probe import Probe
from repro.replication.tracker import LoadTracker

__all__ = ["STRATEGIES", "ReplicationConfig", "BalanceStats", "ReplicaBalancer"]

#: The strategy names :class:`ReplicationConfig` accepts.
STRATEGIES = ("static", "sqrt", "adaptive")


@dataclass(frozen=True)
class ReplicationConfig:
    """Tuning knobs of the replica balancer.

    ``half_life`` sizes the :class:`LoadTracker` the facade builds (in
    observed queries); ``replicate_threshold`` / ``retract_floor`` are
    *per-replica* EWMA loads (group load divided by group size);
    ``min_observations`` keeps the balancer passive until the tracker has
    seen enough traffic to act on.  See docs/REPLICATION.md for how to
    pick values.
    """

    strategy: str = "adaptive"
    replicate_threshold: float = 4.0
    retract_floor: float = 0.25
    min_replicas: int = 1
    max_replicas: int | None = None
    half_life: float = 64.0
    min_observations: int = 50

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise InvalidConfigError(
                f"unknown replication strategy {self.strategy!r}: "
                f"expected one of {', '.join(STRATEGIES)}"
            )
        if self.replicate_threshold <= 0:
            raise InvalidConfigError(
                f"replicate_threshold must be > 0, got {self.replicate_threshold}"
            )
        if not 0 <= self.retract_floor < self.replicate_threshold:
            raise InvalidConfigError(
                f"retract_floor must be in [0, replicate_threshold), got "
                f"{self.retract_floor}"
            )
        if self.min_replicas < 1:
            raise InvalidConfigError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas is not None and self.max_replicas < self.min_replicas:
            raise InvalidConfigError(
                f"max_replicas {self.max_replicas} below min_replicas "
                f"{self.min_replicas}"
            )
        if self.half_life <= 0:
            raise InvalidConfigError(
                f"half_life must be > 0, got {self.half_life}"
            )
        if self.min_observations < 0:
            raise InvalidConfigError(
                f"min_observations must be >= 0, got {self.min_observations}"
            )


@dataclass
class BalanceStats:
    """Counters accumulated across balancer activations."""

    meetings_seen: int = 0
    updates_seen: int = 0
    conversions: int = 0
    retractions: int = 0
    entries_handed_over: int = 0
    entries_lost: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy for experiment records."""
        return {
            "meetings_seen": self.meetings_seen,
            "updates_seen": self.updates_seen,
            "conversions": self.conversions,
            "retractions": self.retractions,
            "entries_handed_over": self.entries_handed_over,
            "entries_lost": self.entries_lost,
        }


class ReplicaBalancer:
    """Moves peers between replica groups according to measured load.

    ``probe`` receives one ``on_replication`` hook per conversion;
    ``listeners`` registered via :meth:`subscribe` are called after every
    structural change (the facade uses this to invalidate its path
    resolver and batch-engine snapshot).
    """

    def __init__(
        self,
        grid: PGrid,
        tracker: LoadTracker,
        *,
        config: ReplicationConfig | None = None,
        probe: Probe | None = None,
    ) -> None:
        self.grid = grid
        self.tracker = tracker
        self.config = config or ReplicationConfig()
        self.probe = probe
        self.stats = BalanceStats()
        self._listeners: list[Callable[[], None]] = []
        self._conversion_listeners: list[Callable[[Address, str, str], None]] = []

    @property
    def enabled(self) -> bool:
        """Whether the strategy can ever change the grid."""
        return self.config.strategy != "static"

    @property
    def epoch(self) -> int:
        """Monotonic change counter (cache-invalidation key)."""
        return self.stats.conversions

    def subscribe(self, listener: Callable[[], None]) -> None:
        """Call *listener* after every structural change."""
        self._listeners.append(listener)

    def subscribe_conversion(
        self, listener: Callable[[Address, str, str], None]
    ) -> None:
        """Call ``listener(address, old_path, new_path)`` per conversion.

        Unlike :meth:`subscribe`'s blanket notifications, conversion
        listeners learn *which* peer moved — what shortcut caches need
        to invalidate exactly the stale responder instead of flushing.
        """
        self._conversion_listeners.append(listener)

    # -- protocol hooks ------------------------------------------------------

    def after_meeting(self, address1: Address, address2: Address) -> bool:
        """One exchange meeting finished; maybe convert one of the pair.

        Returns whether a conversion happened.  The no-op paths (static
        strategy, warm-up, no hot path, no eligible donor) read grid
        state only and draw no RNG.
        """
        self.stats.meetings_seen += 1
        return self._step((address1, address2))

    def after_update(self, reached: Iterable[Address]) -> bool:
        """An update propagation reached *reached*; maybe act on them.

        Update traffic walks the same trie as searches, so the peers it
        contacted are meeting opportunities too (Spiral Walk replicates
        along operation paths).
        """
        self.stats.updates_seen += 1
        return self._step(tuple(sorted(reached)))

    # -- strategy dispatch ---------------------------------------------------

    def _step(self, candidates: Sequence[Address]) -> bool:
        config = self.config
        if config.strategy == "static":
            return False
        if self.tracker.observed < config.min_observations:
            return False
        groups = self.grid.replica_groups()
        if len(groups) < 2:
            return False
        if config.strategy == "adaptive":
            return self._adaptive_step(candidates, groups)
        return self._sqrt_step(candidates, groups)

    def _per_replica(
        self, path: str, groups: dict[str, list[Address]]
    ) -> float:
        return self.tracker.load(path) / len(groups[path])

    def _adaptive_step(
        self, candidates: Sequence[Address], groups: dict[str, list[Address]]
    ) -> bool:
        config = self.config
        hot_paths = [
            path
            for path in groups
            if path
            and self._per_replica(path, groups) > config.replicate_threshold
            and (
                config.max_replicas is None
                or len(groups[path]) < config.max_replicas
            )
        ]
        if not hot_paths:
            return False
        hot = max(hot_paths, key=lambda p: (self._per_replica(p, groups), p))
        for address in candidates:
            donor = self.grid.peer(address)
            if donor.path == hot:
                continue
            group = groups[donor.path]
            if len(group) <= config.min_replicas:
                continue
            if self._per_replica(donor.path, groups) >= config.retract_floor:
                continue  # the donor's group is still earning its replicas
            model = min(groups[hot])
            self._convert(donor, self.grid.peer(model))
            self.stats.retractions += 1
            return True
        return False

    def _sqrt_step(
        self, candidates: Sequence[Address], groups: dict[str, list[Address]]
    ) -> bool:
        config = self.config
        targets = self._sqrt_targets(groups)
        if targets is None:
            return False
        receivers = [
            path
            for path in groups
            if path and targets[path] - len(groups[path]) >= 1
        ]
        if not receivers:
            return False
        receiver = max(
            receivers,
            key=lambda p: (targets[p] - len(groups[p]), self.tracker.load(p), p),
        )
        for address in candidates:
            donor = self.grid.peer(address)
            if donor.path == receiver:
                continue
            group = groups[donor.path]
            if len(group) <= config.min_replicas:
                continue
            if len(group) - targets.get(donor.path, 0) < 1:
                continue  # no surplus to give up
            model = min(groups[receiver])
            self._convert(donor, self.grid.peer(model))
            if self._per_replica(donor.path, groups) < config.retract_floor:
                self.stats.retractions += 1
            return True
        return False

    def _sqrt_targets(
        self, groups: dict[str, list[Address]]
    ) -> dict[str, int] | None:
        """Square-root replica targets, normalized to the population size."""
        config = self.config
        weights = {
            path: math.sqrt(max(self.tracker.load(path), 0.0))
            for path in groups
        }
        total = sum(weights.values())
        if total <= 0.0:
            return None
        population = len(self.grid)
        targets: dict[str, int] = {}
        for path in groups:
            target = int(population * weights[path] / total + 0.5)
            target = max(config.min_replicas, target)
            if config.max_replicas is not None:
                target = min(target, config.max_replicas)
            targets[path] = target
        return targets

    # -- the conversion mechanic ---------------------------------------------

    def _convert(self, donor: Peer, model: Peer) -> None:
        """Retract *donor* from its group and clone *model*'s position.

        The donation half mirrors :meth:`MembershipEngine.leave`: leaf
        entries go to a surviving co-replica (buddies first, then the
        replica directory); if none exists they are lost, as in a crash.
        The clone half copies the model's path, routing table (minus any
        reference to the donor itself) and leaf store, then links buddy
        lists both ways so update strategy 2 sees the new replica.
        """
        grid = self.grid
        old_path = donor.path
        handed = self._hand_over(donor)
        for buddy in sorted(donor.buddies):
            if grid.has_peer(buddy):
                grid.peer(buddy).buddies.discard(donor.address)
        donor.set_path(model.path)
        donor.routing = RoutingTable.from_lists(
            grid.config.refmax,
            [
                [ref for ref in refs if ref != donor.address]
                for refs in model.routing.to_lists()
            ],
        )
        donor.store = DataStore()
        for ref in model.store.iter_refs():
            donor.store.add_ref(ref)
        for buddy in sorted({model.address, *model.buddies}):
            if buddy == donor.address or not grid.has_peer(buddy):
                continue
            donor.add_buddy(buddy)
            grid.peer(buddy).add_buddy(donor.address)
        self.stats.conversions += 1
        self.stats.entries_handed_over += handed
        if self.probe is not None:
            self.probe.on_replication(
                "convert", donor.address, old_path, model.path
            )
        for converted in self._conversion_listeners:
            converted(donor.address, old_path, model.path)
        for listener in self._listeners:
            listener()

    def _hand_over(self, donor: Peer) -> int:
        """Give the donor's leaf entries to a surviving co-replica."""
        entries = list(donor.store.iter_refs())
        if not entries:
            return 0
        grid = self.grid
        target: Address | None = None
        for buddy in sorted(donor.buddies):
            if grid.has_peer(buddy) and grid.peer(buddy).path == donor.path:
                target = buddy
                break
        if target is None and donor.path:
            exact: Address | None = None
            responsible: Address | None = None
            for address in grid.replicas_for_key(donor.path):
                if address == donor.address:
                    continue
                if grid.peer(address).path == donor.path:
                    exact = address
                    break
                if responsible is None:
                    responsible = address
            target = exact if exact is not None else responsible
        if target is None:
            self.stats.entries_lost += len(entries)
            return 0
        store = grid.peer(target).store
        for ref in entries:
            store.add_ref(ref)
        return len(entries)

    def __repr__(self) -> str:
        return (
            f"ReplicaBalancer(strategy={self.config.strategy!r}, "
            f"conversions={self.stats.conversions})"
        )
