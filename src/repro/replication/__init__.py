"""``repro.replication`` — query-load-driven replica balancing.

The paper fixes the replica distribution at construction time (§4);
this package adapts it to the measured query load (ROADMAP item 4):

* :class:`LoadTracker` — per-path EWMA load counters on a logical clock,
  fed through the existing :class:`~repro.obs.probe.Probe` hooks by
  :class:`LoadProbe` (attribution via :class:`PathResolver`).
* :class:`ReplicaBalancer` — the policy object riding the exchange
  protocol's meetings: ``static`` (paper baseline, strict no-op),
  ``sqrt`` (square-root replication) or ``adaptive`` (threshold
  expand/retract, Spiral-Walk-style), configured by
  :class:`ReplicationConfig`.

The common entry point is the facade: ``Grid.build(...,
replication="adaptive")`` wires tracker, probe and balancer, and
``Grid.rebalance()`` drives balancing meetings.  See docs/REPLICATION.md
for the operator guide and ``experiments/replication.py`` for the
strategy ablation.
"""

from repro.replication.balancer import (
    STRATEGIES,
    BalanceStats,
    ReplicaBalancer,
    ReplicationConfig,
)
from repro.replication.tracker import LoadProbe, LoadTracker, PathResolver

__all__ = [
    "STRATEGIES",
    "BalanceStats",
    "LoadProbe",
    "LoadTracker",
    "PathResolver",
    "ReplicaBalancer",
    "ReplicationConfig",
]
