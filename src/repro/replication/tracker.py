"""Query-load accounting per replica group (ROADMAP item 4).

The paper sizes replication statically from eq. (1)–(3) (§4); a deployed
grid sees *skewed* traffic, so the balancer in
:mod:`repro.replication.balancer` needs to know, per path, how much query
load its replica group currently absorbs.  :class:`LoadTracker` keeps one
exponentially-weighted moving counter per path, decayed lazily on a
logical clock that advances once per observed query — no wall-clock, so
the whole subsystem stays deterministic per seed.

Feeding the tracker rides the existing observability contract:
:class:`LoadProbe` is a plain :class:`~repro.obs.probe.Probe` that
translates every ``on_search_end`` hook (depth-first searches, the
breadth-first legs of updates, range queries) into one tracker
observation, attributing the query key to the responsible path through a
:class:`PathResolver`.  Probes are property-tested to never perturb the
simulation, so attaching a :class:`LoadProbe` keeps runs bit-identical to
untracked ones — the same guarantee metrics and traces already enjoy.
"""

from __future__ import annotations

from repro.obs.probe import Probe

__all__ = ["LoadTracker", "PathResolver", "LoadProbe"]


class LoadTracker:
    """Per-path EWMA query-load counters with lazy decay.

    ``half_life`` is expressed in *observed queries*: after that many
    further observations a path's counter has lost half its value.  Decay
    is applied lazily — each path stores ``(value, last_tick)`` and is
    brought forward only when read or written — so tracking cost is O(1)
    per query regardless of how many paths exist.
    """

    def __init__(self, *, half_life: float = 64.0) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        self.half_life = half_life
        self._decay = 0.5 ** (1.0 / half_life)
        self._loads: dict[str, tuple[float, int]] = {}
        self._clock = 0
        self.observed = 0

    # -- the logical clock ---------------------------------------------------

    @property
    def clock(self) -> int:
        """Queries observed so far (decay time base)."""
        return self._clock

    def tick(self, steps: int = 1) -> None:
        """Advance the clock without attributing load (e.g. a query whose
        key resolved to no live path)."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        self._clock += steps

    # -- recording -----------------------------------------------------------

    def record(self, path: str, weight: float = 1.0) -> None:
        """Add *weight* to *path*'s counter at the current clock."""
        value, last = self._loads.get(path, (0.0, self._clock))
        if last < self._clock:
            value *= self._decay ** (self._clock - last)
        self._loads[path] = (value + weight, self._clock)
        self.observed += 1

    def observe(self, path: str | None, weight: float = 1.0) -> None:
        """One finished query: advance the clock, then credit *path*.

        ``path=None`` (the resolver found no responsible group) still
        ticks the clock so unattributable traffic decays everyone.
        """
        self._clock += 1
        if path is not None:
            self.record(path, weight)

    # -- reading -------------------------------------------------------------

    def load(self, path: str) -> float:
        """Current (decayed) load of *path*; 0.0 if never credited."""
        entry = self._loads.get(path)
        if entry is None:
            return 0.0
        value, last = entry
        if last < self._clock:
            value *= self._decay ** (self._clock - last)
        return value

    def loads(self) -> dict[str, float]:
        """Decayed loads of every path ever credited (path-sorted)."""
        return {path: self.load(path) for path in sorted(self._loads)}

    def total(self) -> float:
        """Sum of all decayed counters."""
        return sum(self.load(path) for path in self._loads)

    def hottest(self) -> tuple[str, float] | None:
        """The most loaded path (ties broken by path, deterministically)."""
        if not self._loads:
            return None
        best = max(sorted(self._loads), key=lambda p: (self.load(p), p))
        return best, self.load(best)

    def reset(self) -> None:
        """Forget all counters and restart the clock."""
        self._loads.clear()
        self._clock = 0
        self.observed = 0

    def snapshot(self) -> dict:
        """Plain-dict copy for experiment records."""
        return {
            "clock": self._clock,
            "observed": self.observed,
            "half_life": self.half_life,
            "loads": self.loads(),
        }

    def __repr__(self) -> str:
        return (
            f"LoadTracker(paths={len(self._loads)}, clock={self._clock}, "
            f"half_life={self.half_life})"
        )


class PathResolver:
    """Maps a query key to the path of the replica group responsible for it.

    Resolution walks the key's prefixes longest-first against the set of
    paths currently held by peers; the set is cached and revalidated in
    O(1) against ``grid.membership_version`` plus a local epoch the
    balancer bumps after every conversion (conversions change paths
    without changing membership).
    """

    def __init__(self, grid) -> None:
        self._grid = grid
        self._epoch = 0
        self._cache_key: tuple[int, int] | None = None
        self._paths: frozenset[str] = frozenset()
        self._max_depth = 0

    def invalidate(self) -> None:
        """Force a re-read of the path population on the next resolve."""
        self._epoch += 1

    def _refresh(self) -> None:
        key = (self._grid.membership_version, self._epoch)
        if key == self._cache_key:
            return
        paths = frozenset(peer.path for peer in self._grid.peers())
        self._paths = paths
        self._max_depth = max((len(path) for path in paths), default=0)
        self._cache_key = key

    def __call__(self, query: str) -> str | None:
        self._refresh()
        for depth in range(min(len(query), self._max_depth), -1, -1):
            prefix = query[:depth]
            if prefix in self._paths:
                return prefix
        return None


class LoadProbe(Probe):
    """Feeds a :class:`LoadTracker` from the standard search hooks.

    One ``on_search_end`` = one observation: the clock ticks and the
    query's responsible path (via *resolver*) is credited.  This covers
    plain searches, the search legs of update propagation (``bfs``) and
    reads — every operation that lands traffic on a replica group.  The
    probe reads grid state only through the resolver and draws no RNG,
    preserving the probe-transparency guarantee.
    """

    def __init__(self, tracker: LoadTracker, resolver) -> None:
        self.tracker = tracker
        self.resolver = resolver

    def on_search_end(
        self,
        kind: str,
        start: int,
        query: str,
        *,
        found: bool,
        messages: int,
        failed_attempts: int,
        latency: float = 0.0,
    ) -> None:
        self.tracker.observe(self.resolver(query))
