"""Simulated transport: synchronous message delivery with failure modes.

``LocalTransport`` delivers messages to registered handlers in-process while
modelling the failure characteristics that matter to the paper's claims:

* *offline peers* — delivery consults the grid's online oracle; contacting
  an offline peer raises :class:`~repro.errors.PeerOfflineError` (the caller
  treats it like the paper's ``IF online(peer(r))`` guard);
* *message loss* — an optional independent drop probability;
* *latency* — an optional per-message latency model feeding a simulated
  clock, so experiments can report end-to-end response times, not only
  message counts.

All traffic is counted per :class:`~repro.net.message.MessageKind` in a
:class:`TrafficStats`, which is what the networked examples report.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.errors import (
    InvalidConfigError,
    NoHandlerError,
    PeerOfflineError,
    TransportError,
)
from repro.net.message import Message, MessageKind
from repro.obs.probe import Probe
from repro.sim import rng as rngmod

Handler = Callable[[Message], Message | None]


@dataclass
class TrafficStats:
    """Per-kind message counters plus failure tallies."""

    delivered: Counter = field(default_factory=Counter)
    dropped: int = 0
    offline_failures: int = 0
    simulated_time: float = 0.0

    def total_delivered(self) -> int:
        """Total messages successfully delivered."""
        return sum(self.delivered.values())

    def snapshot(self) -> dict[str, object]:
        """Plain-dict copy for experiment records."""
        return {
            "delivered": {kind.value: n for kind, n in self.delivered.items()},
            "total_delivered": self.total_delivered(),
            "dropped": self.dropped,
            "offline_failures": self.offline_failures,
            "simulated_time": self.simulated_time,
        }


class LatencyModel(Protocol):
    """Maps one message to a simulated delivery delay."""

    def sample(self, message: Message) -> float:
        """Latency in arbitrary simulated time units."""
        ...  # pragma: no cover - protocol


class ConstantLatency:
    """Fixed latency per message hop."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, message: Message) -> float:  # noqa: ARG002
        return self.delay


class UniformLatency:
    """Uniform latency in ``[low, high]`` per message hop."""

    def __init__(self, low: float, high: float, rng: random.Random) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {low}, {high}")
        self.low = low
        self.high = high
        self._rng = rng

    def sample(self, message: Message) -> float:  # noqa: ARG002
        return self._rng.uniform(self.low, self.high)


class LocalTransport:
    """In-process synchronous transport over a :class:`PGrid` population."""

    def __init__(
        self,
        grid: PGrid,
        *,
        loss_probability: float = 0.0,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        seed: int | None = None,
        probe: Probe | None = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.grid = grid
        self.loss_probability = loss_probability
        self.latency = latency
        # The loss model draws from its own stream, never from the grid's
        # protocol RNG: transport noise must not perturb the algorithms'
        # randomness (the engine/node equivalence suite depends on this).
        # An explicit ``rng`` wins; otherwise ``seed`` derives a dedicated
        # "transport" stream.  A lossy transport with neither is a
        # configuration error — silently borrowing the grid RNG (the old
        # behavior) made message loss change routing decisions.
        if rng is not None:
            self._rng: random.Random | None = rng
        elif seed is not None:
            self._rng = rngmod.derive(seed, "transport")
        else:
            self._rng = None
        if loss_probability > 0.0 and self._rng is None:
            raise InvalidConfigError(
                "loss_probability > 0 requires an explicit rng= or seed= "
                "(the transport never draws from the grid's protocol RNG)"
            )
        self._handlers: dict[Address, Handler] = {}
        self.probe = probe
        self.stats = TrafficStats()

    def register(self, address: Address, handler: Handler) -> None:
        """Attach the message handler for *address* (one per peer).

        *address* must name a peer of the grid: a handler for a
        nonexistent peer can never be reached by the protocol (routing
        only targets grid references), so registering one is a
        configuration error, not a useful state.
        """
        if not self.grid.has_peer(address):
            raise InvalidConfigError(
                f"cannot register a handler for {address!r}: "
                "no such peer in the grid"
            )
        if address in self._handlers:
            raise TransportError(f"handler already registered for {address}")
        self._handlers[address] = handler

    def unregister(self, address: Address) -> None:
        """Detach the handler for *address* (peer leaves the network)."""
        self._handlers.pop(address, None)

    def is_reachable(self, address: Address) -> bool:
        """Registered and currently online."""
        return address in self._handlers and self.grid.is_online(address)

    def send(self, message: Message) -> Message | None:
        """Deliver *message*; return the handler's synchronous reply.

        Raises :class:`PeerOfflineError` if the destination is offline,
        :class:`NoHandlerError` (a :class:`TransportError`) if it has no
        handler, and :class:`TransportError` if the message is dropped by
        the loss model.
        """
        probe = self.probe
        handler = self._handlers.get(message.destination)
        if handler is None:
            raise NoHandlerError(message.destination)
        if not self.grid.is_online(message.destination):
            self.stats.offline_failures += 1
            if probe is not None:
                probe.on_transport(
                    message.kind.value, message.source, message.destination, "offline"
                )
            raise PeerOfflineError(message.destination)
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.stats.dropped += 1
            if probe is not None:
                probe.on_transport(
                    message.kind.value, message.source, message.destination, "dropped"
                )
            raise TransportError(
                f"message {message.message_id} to {message.destination} lost"
            )
        if self.latency is not None:
            self.stats.simulated_time += self.latency.sample(message)
        self.stats.delivered[message.kind] += 1
        if probe is not None:
            probe.on_transport(
                message.kind.value, message.source, message.destination, "delivered"
            )
        return handler(message)

    def try_send(self, message: Message) -> Message | None:
        """Like :meth:`send` but returns ``None`` on offline/lost instead of
        raising (the common pattern in the randomized algorithms)."""
        try:
            return self.send(message)
        except (PeerOfflineError, TransportError):
            return None

    def count(self, kind: MessageKind) -> int:
        """Delivered messages of one kind."""
        return self.stats.delivered[kind]
