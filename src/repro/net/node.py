"""Message-driven P-Grid node.

:class:`PGridNode` wraps one :class:`~repro.core.peer.Peer` behind a message
handler, executing the Fig. 2 search protocol *over the transport* instead
of via direct function calls.  This is the end-to-end "system" execution
path: the networked examples and the integration tests run searches and
updates through it and read costs off the transport's traffic counters,
cross-validating the faster in-process engines used by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import keys as keyspace
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.storage import DataRef
from repro.net.message import (
    Message,
    MessageKind,
    pong,
    propagate_ack,
    propagate_message,
    query_message,
    query_response,
    update_message,
)
from repro.net.transport import LocalTransport


@dataclass
class NodeSearchOutcome:
    """Result of a node-initiated (networked) search."""

    query: str
    found: bool
    responder: Address | None
    messages_sent: int


class PGridNode:
    """One networked peer: handles protocol messages for its local state.

    ``transport`` is anything with the :class:`LocalTransport` interface —
    in particular a :class:`repro.faults.FaultInjector` wrapping one.
    ``retry`` (a duck-typed :class:`repro.faults.RetryPolicy`) governs how
    many times a failed outbound contact is re-attempted before the node
    moves on to the next reference (backoff is a simulated-time concern of
    the transport layer; the node only consumes the attempt count).
    """

    def __init__(
        self,
        peer: Peer,
        grid: PGrid,
        transport: LocalTransport,
        *,
        retry=None,
    ) -> None:
        self.peer = peer
        self.grid = grid
        self.transport = transport
        self.retry = retry
        transport.register(peer.address, self.handle)

    def _try_send(self, message: Message) -> Message | None:
        """``transport.try_send`` with the node's retry policy applied."""
        attempts = self.retry.attempts if self.retry is not None else 1
        for _ in range(attempts):
            reply = self.transport.try_send(message)
            if reply is not None:
                return reply
        return None

    # -- message dispatch ---------------------------------------------------------

    def handle(self, message: Message) -> Message | None:
        """Transport entry point."""
        if message.kind is MessageKind.QUERY:
            return self._handle_query(message)
        if message.kind is MessageKind.UPDATE:
            return self._handle_update(message)
        if message.kind is MessageKind.PROPAGATE:
            return self._handle_propagate(message)
        if message.kind is MessageKind.PING:
            return pong(message)
        return None

    # -- Fig. 2 over messages --------------------------------------------------------

    def _handle_query(self, message: Message) -> Message:
        query = message.payload["query"]
        level = message.payload["level"]
        found, responder = self._resolve(query, level)
        refs: list[dict] = []
        if found and responder == self.peer.address:
            # Routing consumed the first `level` bits of the original query;
            # they equal this peer's path prefix (search invariant), so the
            # full key for the leaf lookup is prefix + suffix.
            full_query = self.peer.path[:level] + query
            refs = [
                {"key": ref.key, "holder": ref.holder, "version": ref.version}
                for ref in self.peer.store.lookup(full_query)
            ]
        return query_response(message, found=found, responder=responder, refs=refs)

    def _resolve(self, query: str, level: int) -> tuple[bool, Address | None]:
        """One Fig. 2 step at this node, forwarding over the transport."""
        rempath = self.peer.path[level:]
        compath = keyspace.common_prefix(query, rempath)
        lc = len(compath)
        if lc == len(query) or lc == len(rempath):
            return True, self.peer.address
        querypath = query[lc:]
        refs = list(self.peer.routing.refs(level + lc + 1))
        rng = self.grid.rng
        while refs:
            address = refs.pop(rng.randrange(len(refs)))
            reply = self._try_send(
                query_message(self.peer.address, address, querypath, level + lc)
            )
            if reply is None:
                continue
            if reply.payload["found"]:
                return True, reply.payload["responder"]
        return False, None

    # -- local API (what the user of this node calls) -----------------------------------

    def search(self, query: str) -> NodeSearchOutcome:
        """Search issued by this node's user (starts locally, no message)."""
        keyspace.validate_key(query)
        before = self.transport.stats.delivered[MessageKind.QUERY]
        found, responder = self._resolve(query, 0)
        sent = self.transport.stats.delivered[MessageKind.QUERY] - before
        return NodeSearchOutcome(
            query=query, found=found, responder=responder, messages_sent=sent
        )

    def push_update(self, destination: Address, ref: DataRef) -> bool:
        """Send one index update to *destination*; True on delivery."""
        reply = self._try_send(
            update_message(
                self.peer.address, destination, ref.key, ref.holder, ref.version
            )
        )
        return reply is not None

    # -- breadth-first update propagation over messages -----------------------------

    def propagate_update(
        self, ref: DataRef, *, recbreadth: int = 2
    ) -> set[Address]:
        """Publish *ref* via the message-level breadth-first protocol.

        Mirrors :meth:`repro.core.search.SearchEngine.query_breadth` but as
        explicit PROPAGATE messages with aggregated acknowledgements; the
        returned set contains every replica that installed the entry
        (including this node if responsible).
        """
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        keyspace.validate_key(ref.key)
        reached = self._propagate_local(
            ref, query=ref.key, level=0, recbreadth=recbreadth
        )
        return set(reached)

    def _propagate_local(
        self, ref: DataRef, *, query: str, level: int, recbreadth: int
    ) -> list[Address]:
        """One propagation step at this node (shared by entry and handler)."""
        reached: list[Address] = []
        rempath = self.peer.path[level:]
        compath = keyspace.common_prefix(query, rempath)
        lc = len(compath)
        if lc == len(query) or lc == len(rempath):
            self.peer.store.add_ref(ref)
            reached.append(self.peer.address)
            return reached
        querypath = query[lc:]
        refs = list(self.peer.routing.refs(level + lc + 1))
        rng = self.grid.rng
        rng.shuffle(refs)
        forwarded = 0
        for address in refs:
            if forwarded >= recbreadth:
                break
            reply = self._try_send(
                propagate_message(
                    self.peer.address,
                    address,
                    key=ref.key,
                    holder=ref.holder,
                    version=ref.version,
                    deleted=ref.deleted,
                    query=querypath,
                    level=level + lc,
                    recbreadth=recbreadth,
                )
            )
            if reply is None:
                continue
            forwarded += 1
            reached.extend(reply.payload["reached"])
        return reached

    def _handle_propagate(self, message: Message) -> Message:
        payload = message.payload
        ref = DataRef(
            key=payload["key"],
            holder=payload["holder"],
            version=payload["version"],
            deleted=payload["deleted"],
        )
        reached = self._propagate_local(
            ref,
            query=payload["query"],
            level=payload["level"],
            recbreadth=payload["recbreadth"],
        )
        return propagate_ack(message, reached)

    def _handle_update(self, message: Message) -> Message:
        ref = DataRef(
            key=message.payload["key"],
            holder=message.payload["holder"],
            version=message.payload["version"],
        )
        self.peer.store.add_ref(ref)
        return Message(
            kind=MessageKind.UPDATE_ACK,
            source=self.peer.address,
            destination=message.source,
            in_reply_to=message.message_id,
        )


def attach_nodes(
    grid: PGrid, transport: LocalTransport, *, retry=None
) -> dict[Address, PGridNode]:
    """Create one node per peer of *grid*, registered on *transport*.

    *transport* may be a :class:`repro.faults.FaultInjector`; *retry* is
    forwarded to every node.
    """
    return {
        peer.address: PGridNode(peer, grid, transport, retry=retry)
        for peer in grid.peers()
    }
