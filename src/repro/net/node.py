"""Message-driven P-Grid node: the protocol machines' network driver.

:class:`PGridNode` wraps one :class:`~repro.core.peer.Peer` behind a message
handler and executes the *same* sans-I/O machines as the in-process engines
(:mod:`repro.protocol`) — but answers their effects over the transport
instead of by direct calls:

* :class:`~repro.protocol.Contact` becomes one ``transport.send`` of a
  ``QUERY`` / ``BREADTH_QUERY`` / ``RANGE_QUERY`` / ``PROPAGATE`` message
  (a retry's simulated backoff is fed into the transport's clock first);
  :class:`~repro.errors.NoHandlerError` answers ``GONE`` (dangling
  reference — never retried), :class:`~repro.errors.PeerOfflineError` and
  dropped messages answer ``OFFLINE``;
* :class:`~repro.protocol.Resolve` reads the remote subtree's result off
  the synchronous reply, merging its message/failure deltas, cumulative
  retry backoff and remaining budget into the local operation state —
  value-threading that is equivalent to the engines' shared objects
  because delivery is synchronous.

Routing decisions therefore live in exactly one place
(:mod:`repro.protocol.search`), consume the grid RNG in exactly the same
order as the engines, and honor the full :class:`~repro.faults.RetryPolicy`
semantics (attempt bound, exponential backoff on the simulated clock, and
the accumulated-delay deadline — threaded across hops via the messages'
``retry_spent`` field).  The integration tests cross-validate this path
against the engines message-for-message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import keys as keyspace
from repro.core.config import SearchConfig
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.search import BreadthSearchResult, RangeSearchResult
from repro.core.storage import DataRef
from repro.errors import NoHandlerError, PeerOfflineError, TransportError
from repro.net.message import (
    Message,
    MessageKind,
    breadth_message,
    breadth_response,
    pong,
    propagate_ack,
    propagate_message,
    query_message,
    query_response,
    update_message,
)
from repro.net.transport import LocalTransport
from repro.protocol.contact import Budget, Context, StepStats
from repro.protocol.effects import GONE, OFFLINE, OK, Contact, Resolve
from repro.protocol.search import (
    Traversal,
    breadth_step,
    dfs_step,
    repeated_queries,
    run_range,
)

__all__ = ["NodeSearchOutcome", "PGridNode", "attach_nodes"]


@dataclass
class NodeSearchOutcome:
    """Result of a node-initiated (networked) search."""

    query: str
    found: bool
    responder: Address | None
    messages_sent: int
    failed_attempts: int = 0
    retry_delay: float = 0.0
    data_refs: list[DataRef] = field(default_factory=list)

    @property
    def messages(self) -> int:
        """Alias of ``messages_sent`` (the shared result protocol's name)."""
        return self.messages_sent


class PGridNode:
    """One networked peer: handles protocol messages for its local state.

    ``transport`` is anything with the :class:`LocalTransport` interface —
    in particular a :class:`repro.faults.FaultInjector` wrapping one.
    ``retry`` / ``healer`` are the resilience collaborators (duck-typed
    :class:`repro.faults.RetryPolicy` / :class:`repro.faults.RefHealer`),
    consulted by the shared contact machine exactly as the engines do;
    ``config`` supplies the message budget for operations this node
    initiates (forwarded hops inherit the initiator's remaining budget
    from the message payload).
    """

    def __init__(
        self,
        peer: Peer,
        grid: PGrid,
        transport: LocalTransport,
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
    ) -> None:
        self.peer = peer
        self.grid = grid
        self.transport = transport
        self.retry = retry
        self.config = config or SearchConfig()
        self._ctx = Context(grid.rng, retry=retry, healer=healer)
        transport.register(peer.address, self.handle)

    # -- effect execution ---------------------------------------------------------

    def _drive(self, gen, budget: Budget, stats: StepStats, build, resolve):
        """Run one machine, answering effects over the transport.

        *build* turns a :class:`Contact` effect into the wire message;
        *resolve* merges the pending reply into the operation state and
        returns the machine's answer to the :class:`Resolve` effect.
        """
        response = None
        pending: Message | None = None
        while True:
            try:
                effect = gen.send(response)
            except StopIteration as stop:
                return stop.value
            cls = type(effect)
            if cls is Contact:
                response, pending = self._contact(effect, budget, stats, build)
            elif cls is Resolve:
                response = resolve(pending)
            else:
                raise TypeError(
                    f"unexpected effect for the message driver: {effect!r}"
                )

    def _contact(self, effect: Contact, budget: Budget, stats: StepStats, build):
        """One contact attempt over the transport -> (status, reply)."""
        if effect.delay:
            # Retry backoff is simulated time spent waiting before this
            # attempt; it accrues on the transport's clock.
            self.transport.stats.simulated_time += effect.delay
        if budget.remaining <= 0:
            # The budget is spent: the machine will stop right after this
            # liveness check, so answer it without paying for a message
            # (mirrors the direct driver, which never sent one here).
            if not self.grid.has_peer(effect.target):
                return GONE, None
            return (OK if self.grid.is_online(effect.target) else OFFLINE), None
        message = build(effect)
        try:
            reply = self.transport.send(message)
        except NoHandlerError:
            return GONE, None
        except PeerOfflineError:
            return OFFLINE, None
        except TransportError:  # dropped by the loss model / fault plan
            return OFFLINE, None
        if reply is None:
            return OFFLINE, None
        return OK, reply

    @staticmethod
    def _merge_costs(payload: dict, budget: Budget, stats: StepStats) -> None:
        """Fold a reply's subtree deltas into the local operation state."""
        stats.messages += payload.get("messages", 0)
        stats.failed += payload.get("failed", 0)
        stats.retry_delay = payload.get("retry_delay", stats.retry_delay)
        budget.remaining = payload.get("budget", budget.remaining)

    # -- Fig. 2 depth-first search over messages -----------------------------------

    def _run_dfs(self, query: str, level: int, budget: Budget, stats: StepStats):
        """Drive the shared Fig. 2 machine; returns (found, responder, refs).

        *refs* is the responder's reply payload (list of entry dicts) when
        the answer came over the wire, ``None`` when this node itself is
        the responder (the caller does the local lookup).
        """
        captured: dict[str, list[dict]] = {}

        def build(effect: Contact) -> Message:
            step = effect.payload
            return query_message(
                self.peer.address,
                effect.target,
                step.query,
                step.level,
                budget=budget.remaining - 1,
                retry_spent=stats.retry_delay,
            )

        def resolve(reply: Message):
            payload = reply.payload
            self._merge_costs(payload, budget, stats)
            found = payload["found"]
            if found:
                captured["refs"] = payload.get("refs", [])
            return found, payload["responder"]

        found, responder = self._drive(
            dfs_step(self.peer, query, level, self._ctx, budget, stats),
            budget,
            stats,
            build,
            resolve,
        )
        return found, responder, captured.get("refs")

    def _handle_query(self, message: Message) -> Message:
        payload = message.payload
        query = payload["query"]
        level = payload["level"]
        budget = Budget(payload.get("budget", self.config.max_messages))
        stats = StepStats()
        stats.retry_delay = payload.get("retry_spent", 0.0)
        found, responder, refs = self._run_dfs(query, level, budget, stats)
        if found and refs is None and responder == self.peer.address:
            # Routing consumed the first `level` bits of the original query;
            # they equal this peer's path prefix (search invariant), so the
            # full key for the leaf lookup is prefix + suffix.
            full_query = self.peer.path[:level] + query
            refs = [
                {"key": ref.key, "holder": ref.holder, "version": ref.version}
                for ref in self.peer.store.lookup(full_query)
            ]
        return query_response(
            message,
            found=found,
            responder=responder,
            refs=refs or [],
            messages=stats.messages,
            failed=stats.failed,
            retry_delay=stats.retry_delay,
            budget=budget.remaining,
        )

    # -- breadth-first walks over messages (update / breadth / range) ---------------

    def _run_breadth(
        self,
        query: str,
        level: int,
        trav: Traversal,
        *,
        collect: str | None = None,
        ref: DataRef | None = None,
    ) -> dict[Address, list[dict]]:
        """Drive the shared breadth machine at this hop.

        With *ref* the walk is an update propagation: every responsible
        peer (including this one) installs the entry.  With *collect* it
        is a range sweep: responsible peers return their entries under the
        *collect* prefix.  Returns the entries gathered by this subtree.
        """
        budget, stats = trav.budget, trav.stats
        entries: dict[Address, list[dict]] = {}

        def build(effect: Contact) -> Message:
            step = effect.payload
            seen = sorted(trav.seen)
            if ref is not None:
                return propagate_message(
                    self.peer.address,
                    effect.target,
                    key=ref.key,
                    holder=ref.holder,
                    version=ref.version,
                    deleted=ref.deleted,
                    query=step.query,
                    level=step.level,
                    recbreadth=step.recbreadth,
                    seen=seen,
                    budget=budget.remaining - 1,
                    retry_spent=stats.retry_delay,
                )
            return breadth_message(
                self.peer.address,
                effect.target,
                query=step.query,
                level=step.level,
                recbreadth=step.recbreadth,
                enumerate_subtree=step.enumerate_subtree,
                seen=seen,
                budget=budget.remaining - 1,
                retry_spent=stats.retry_delay,
                collect=collect,
            )

        def resolve(reply: Message):
            payload = reply.payload
            self._merge_costs(payload, budget, stats)
            trav.seen.update(payload.get("seen", ()))
            trav.responders.extend(
                payload.get("responders", payload.get("reached", []))
            )
            for responder, found in payload.get("entries", {}).items():
                entries.setdefault(responder, []).extend(found)
            return None

        self._drive(
            breadth_step(self.peer, query, level, self._ctx, trav),
            budget,
            stats,
            build,
            resolve,
        )
        # The machine appends this hop's own address first iff responsible.
        if trav.responders and trav.responders[0] == self.peer.address:
            if ref is not None:
                self.peer.store.add_ref(ref)
            if collect is not None:
                entries[self.peer.address] = [
                    {
                        "key": r.key,
                        "holder": r.holder,
                        "version": r.version,
                        "deleted": r.deleted,
                    }
                    for r in self.peer.store.lookup(collect)
                ]
        return entries

    def _traversal_from(self, payload: dict, *, enumerate_subtree: bool) -> Traversal:
        """Reconstruct the walk state a breadth-family message carries."""
        trav = Traversal(
            Budget(payload.get("budget", self.config.max_messages)),
            StepStats(),
            payload["recbreadth"],
            enumerate_subtree=enumerate_subtree,
            seen=set(payload.get("seen", ())),
        )
        trav.stats.retry_delay = payload.get("retry_spent", 0.0)
        return trav

    def _handle_breadth(self, message: Message) -> Message:
        payload = message.payload
        trav = self._traversal_from(
            payload, enumerate_subtree=payload.get("enumerate_subtree", False)
        )
        entries = self._run_breadth(
            payload["query"], payload["level"], trav, collect=payload.get("collect")
        )
        return breadth_response(
            message,
            responders=list(trav.responders),
            seen=sorted(trav.seen),
            messages=trav.stats.messages,
            failed=trav.stats.failed,
            retry_delay=trav.stats.retry_delay,
            budget=trav.budget.remaining,
            entries=entries if message.kind is MessageKind.RANGE_QUERY else None,
        )

    def _handle_propagate(self, message: Message) -> Message:
        payload = message.payload
        ref = DataRef(
            key=payload["key"],
            holder=payload["holder"],
            version=payload["version"],
            deleted=payload["deleted"],
        )
        trav = self._traversal_from(payload, enumerate_subtree=False)
        self._run_breadth(payload["query"], payload["level"], trav, ref=ref)
        return propagate_ack(
            message,
            trav.responders,
            seen=sorted(trav.seen),
            messages=trav.stats.messages,
            failed=trav.stats.failed,
            retry_delay=trav.stats.retry_delay,
            budget=trav.budget.remaining,
        )

    # -- message dispatch ---------------------------------------------------------

    def handle(self, message: Message) -> Message | None:
        """Transport entry point."""
        kind = message.kind
        if kind is MessageKind.QUERY:
            return self._handle_query(message)
        if kind is MessageKind.BREADTH_QUERY or kind is MessageKind.RANGE_QUERY:
            return self._handle_breadth(message)
        if kind is MessageKind.PROPAGATE:
            return self._handle_propagate(message)
        if kind is MessageKind.UPDATE:
            return self._handle_update(message)
        if kind is MessageKind.PING:
            return pong(message)
        return None

    # -- local API (what the user of this node calls) -----------------------------------

    def search(self, query: str) -> NodeSearchOutcome:
        """Search issued by this node's user (starts locally, no message)."""
        keyspace.validate_key(query)
        budget = Budget(self.config.max_messages)
        stats = StepStats()
        found, responder, refs = self._run_dfs(query, 0, budget, stats)
        if found and refs is None and responder == self.peer.address:
            refs = [
                {"key": ref.key, "holder": ref.holder, "version": ref.version}
                for ref in self.peer.store.lookup(query)
            ]
        data_refs = [
            DataRef(key=r["key"], holder=r["holder"], version=r["version"])
            for r in (refs or [])
        ]
        return NodeSearchOutcome(
            query=query,
            found=found,
            responder=responder,
            messages_sent=stats.messages,
            failed_attempts=stats.failed,
            retry_delay=stats.retry_delay,
            data_refs=data_refs,
        )

    def search_repeated(
        self, query: str, times: int
    ) -> tuple[set[Address], int, int]:
        """§5.2 update strategy 1 over messages: *times* independent
        searches; returns (responders, messages, failed attempts)."""
        return repeated_queries(lambda: self.search(query), times)

    def search_breadth(
        self, query: str, recbreadth: int, *, enumerate_subtree: bool = False
    ) -> BreadthSearchResult:
        """Breadth-first search over BREADTH_QUERY messages (§3 strategy 3).

        Same semantics (and same result type) as
        :meth:`repro.core.search.SearchEngine.query_breadth`.
        """
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        keyspace.validate_key(query)
        trav = Traversal(
            Budget(self.config.max_messages),
            StepStats(),
            recbreadth,
            enumerate_subtree=enumerate_subtree,
        )
        self._run_breadth(query, 0, trav)
        return BreadthSearchResult(
            query=query,
            start=self.peer.address,
            responders=list(trav.responders),
            messages=trav.stats.messages,
            failed_attempts=trav.stats.failed,
            retry_delay=trav.stats.retry_delay,
        )

    def range_search(
        self, low: str, high: str, *, recbreadth: int = 2
    ) -> RangeSearchResult:
        """Range query over RANGE_QUERY messages.

        Same cover decomposition, deduplication and result type as
        :meth:`repro.core.search.SearchEngine.query_range`; the
        responders' entries travel back in the replies instead of being
        read off their stores directly.
        """
        cover = keyspace.range_cover(low, high)
        collected: dict[str, dict[Address, list[DataRef]]] = {}

        def search(prefix: str) -> BreadthSearchResult:
            trav = Traversal(
                Budget(self.config.max_messages),
                StepStats(),
                recbreadth,
                enumerate_subtree=True,
            )
            entries = self._run_breadth(prefix, 0, trav, collect=prefix)
            collected[prefix] = {
                responder: [
                    DataRef(
                        key=e["key"],
                        holder=e["holder"],
                        version=e["version"],
                        deleted=e.get("deleted", False),
                    )
                    for e in found
                ]
                for responder, found in entries.items()
            }
            return BreadthSearchResult(
                query=prefix,
                start=self.peer.address,
                responders=list(trav.responders),
                messages=trav.stats.messages,
                failed_attempts=trav.stats.failed,
                retry_delay=trav.stats.retry_delay,
            )

        responders, data_refs, messages, failed, retry_delay = run_range(
            low,
            high,
            cover=cover,
            search=search,
            fetch=lambda responder, prefix: collected[prefix].get(responder, []),
        )
        return RangeSearchResult(
            low=low,
            high=high,
            cover=cover,
            responders=responders,
            data_refs=data_refs,
            messages=messages,
            failed_attempts=failed,
            retry_delay=retry_delay,
        )

    def push_update(self, destination: Address, ref: DataRef) -> bool:
        """Send one index update to *destination*; True on delivery.

        Honors the full retry policy: bounded attempts, exponential
        backoff accrued on the transport's simulated clock, and the
        accumulated-delay deadline.  A destination with no handler is
        gone for good and is never retried.
        """
        message = update_message(
            self.peer.address, destination, ref.key, ref.holder, ref.version
        )
        retry = self.retry
        attempts = retry.attempts if retry is not None else 1
        spent = 0.0
        attempt = 1
        while True:
            try:
                self.transport.send(message)
                return True
            except NoHandlerError:
                return False
            except (PeerOfflineError, TransportError):
                pass
            attempt += 1
            if attempt > attempts:
                return False
            delay = retry.delay_before(attempt)
            if retry.deadline is not None and spent + delay > retry.deadline:
                return False
            spent += delay
            self.transport.stats.simulated_time += delay

    def propagate_update(
        self, ref: DataRef, *, recbreadth: int = 2
    ) -> set[Address]:
        """Publish *ref* via the message-level breadth-first protocol.

        Runs the same machine as
        :meth:`repro.core.search.SearchEngine.query_breadth` over explicit
        PROPAGATE messages with aggregated acknowledgements; the returned
        set contains every replica that installed the entry (including
        this node if responsible).
        """
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        keyspace.validate_key(ref.key)
        trav = Traversal(
            Budget(self.config.max_messages), StepStats(), recbreadth
        )
        self._run_breadth(ref.key, 0, trav, ref=ref)
        return set(trav.responders)

    def _handle_update(self, message: Message) -> Message:
        ref = DataRef(
            key=message.payload["key"],
            holder=message.payload["holder"],
            version=message.payload["version"],
        )
        self.peer.store.add_ref(ref)
        return Message(
            kind=MessageKind.UPDATE_ACK,
            source=self.peer.address,
            destination=message.source,
            in_reply_to=message.message_id,
        )


def attach_nodes(
    grid: PGrid,
    transport: LocalTransport,
    *,
    retry=None,
    healer=None,
    config: SearchConfig | None = None,
) -> dict[Address, PGridNode]:
    """Create one node per peer of *grid*, registered on *transport*.

    *transport* may be a :class:`repro.faults.FaultInjector`; *retry* /
    *healer* / *config* are forwarded to every node.
    """
    return {
        peer.address: PGridNode(
            peer, grid, transport, retry=retry, healer=healer, config=config
        )
        for peer in grid.peers()
    }
