"""Simulated network substrate: typed messages, transport, networked nodes."""

from repro.net.message import (
    Message,
    MessageKind,
    breadth_message,
    breadth_response,
    ping,
    pong,
    propagate_ack,
    propagate_message,
    query_message,
    query_response,
    update_message,
)
from repro.net.node import NodeSearchOutcome, PGridNode, attach_nodes
from repro.net.transport import (
    ConstantLatency,
    LocalTransport,
    TrafficStats,
    UniformLatency,
)
from repro.net.wire import decode_message, encode_message, frame_message

__all__ = [
    "ConstantLatency",
    "LocalTransport",
    "Message",
    "MessageKind",
    "NodeSearchOutcome",
    "PGridNode",
    "TrafficStats",
    "UniformLatency",
    "attach_nodes",
    "breadth_message",
    "breadth_response",
    "decode_message",
    "encode_message",
    "frame_message",
    "ping",
    "pong",
    "propagate_ack",
    "propagate_message",
    "query_message",
    "query_response",
    "update_message",
]
