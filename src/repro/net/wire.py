"""Wire framing of protocol messages: length-prefixed JSON codec.

The in-process transports pass :class:`~repro.net.message.Message`
objects by reference; a multi-process swarm (``repro.aio.tcp``) needs
them as bytes.  This module is that boundary: :func:`encode_message` /
:func:`decode_message` must round-trip every message kind
**bit-identically** — ``decode(encode(m)) == m`` field for field,
payload for payload — which the property tests in
``tests/net/test_wire.py`` assert for the whole kind vocabulary.

JSON is the obvious substrate but has one sharp edge for this protocol:
object keys must be strings, while ``BREADTH_RESPONSE`` /
``RANGE_RESPONSE`` payloads carry ``entries`` dicts keyed by *integer*
peer addresses.  Naive ``json.dumps`` would silently stringify those
keys and break equality (and every consumer doing ``entries[address]``
lookups).  Any dict with a non-string key is therefore encoded as a
tagged pair list ``{"__imap__": [[key, value], ...]}`` — JSON preserves
scalar types inside arrays — and restored verbatim on decode.  A
string-keyed dict that happens to contain the reserved ``"__imap__"``
key takes the tagged form too, so the encoding is unambiguous.

Frames on a stream are ``4-byte big-endian length || UTF-8 JSON body``
(:func:`frame_message`, :func:`read_message`, :func:`write_message`),
with a hard size cap so a corrupt length prefix cannot ask the reader
to buffer gigabytes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.errors import WireFormatError
from repro.net.message import Message, MessageKind

__all__ = [
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "decode_message",
    "encode_message",
    "frame_message",
    "read_message",
    "write_message",
]

#: Bumped on any incompatible change to the frame layout.
WIRE_VERSION = 1

#: Upper bound on one frame's body; larger length prefixes are rejected.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Tag for dicts whose keys JSON objects cannot represent (int addresses).
_IMAP = "__imap__"


def _encode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and _IMAP not in value:
            return {key: _encode_value(item) for key, item in value.items()}
        return {_IMAP: [[key, _encode_value(item)] for key, item in value.items()]}
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_IMAP}:
            return {key: _decode_value(item) for key, item in value[_IMAP]}
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_message(message: Message) -> bytes:
    """Serialize one message to its canonical wire body (no frame header)."""
    document = {
        "v": WIRE_VERSION,
        "kind": message.kind.value,
        "source": message.source,
        "destination": message.destination,
        "payload": _encode_value(message.payload),
        "message_id": message.message_id,
        "in_reply_to": message.in_reply_to,
    }
    return json.dumps(document, separators=(",", ":"), ensure_ascii=True).encode("ascii")


def decode_message(data: bytes) -> Message:
    """Parse one wire body back into a :class:`Message` (bit-identical)."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"undecodable wire body: {exc}") from exc
    if not isinstance(document, dict):
        raise WireFormatError(f"wire body is not an object: {document!r}")
    version = document.get("v")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version!r} (this build speaks {WIRE_VERSION})"
        )
    try:
        return Message(
            kind=MessageKind(document["kind"]),
            source=document["source"],
            destination=document["destination"],
            payload=_decode_value(document["payload"]),
            message_id=document["message_id"],
            in_reply_to=document["in_reply_to"],
        )
    except (KeyError, ValueError) as exc:
        raise WireFormatError(f"malformed wire body: {exc}") from exc


def frame_message(message: Message) -> bytes:
    """One stream frame: big-endian length prefix plus the encoded body."""
    body = encode_message(message)
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"message {message.message_id} encodes to {len(body)} bytes "
            f"(frame cap {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(body)) + body


async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one framed message off *reader*; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireFormatError("stream truncated inside a frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame announces {length} bytes (cap {MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError("stream truncated inside a frame body") from exc
    return decode_message(body)


async def write_message(writer: asyncio.StreamWriter, message: Message) -> None:
    """Write one framed message to *writer* and drain its buffer."""
    writer.write(frame_message(message))
    await writer.drain()
