"""Typed messages of the simulated P-Grid protocol.

The paper's algorithms are specified as function calls between peers; to
measure communication cost as a *system* rather than inferring it, the
:mod:`repro.net` substrate executes them as explicit messages.  Each message
carries source/destination addresses and a payload mirroring the pseudo-code
arguments.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.peer import Address

_message_ids = itertools.count(1)


class MessageKind(enum.Enum):
    """Protocol message types."""

    QUERY = "query"
    QUERY_RESPONSE = "query_response"
    EXCHANGE = "exchange"
    UPDATE = "update"
    UPDATE_ACK = "update_ack"
    PROPAGATE = "propagate"
    PROPAGATE_ACK = "propagate_ack"
    PING = "ping"
    PONG = "pong"


@dataclass(frozen=True)
class Message:
    """One protocol message.

    ``payload`` carries kind-specific fields (documented per helper below);
    ``message_id`` is unique per process and links responses to requests via
    ``in_reply_to``.
    """

    kind: MessageKind
    source: Address
    destination: Address
    payload: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))
    in_reply_to: int | None = None


def query_message(source: Address, destination: Address, query: str, level: int) -> Message:
    """Fig. 2 forward: ``query(peer(destination), query, level)``."""
    return Message(
        kind=MessageKind.QUERY,
        source=source,
        destination=destination,
        payload={"query": query, "level": level},
    )


def query_response(
    request: Message, *, found: bool, responder: Address | None, refs: list[dict] | None = None
) -> Message:
    """Answer to a :data:`MessageKind.QUERY` message."""
    return Message(
        kind=MessageKind.QUERY_RESPONSE,
        source=request.destination,
        destination=request.source,
        payload={"found": found, "responder": responder, "refs": refs or []},
        in_reply_to=request.message_id,
    )


def update_message(
    source: Address, destination: Address, key: str, holder: Address, version: int
) -> Message:
    """Deliver a (possibly fresher) index entry to a responsible peer."""
    return Message(
        kind=MessageKind.UPDATE,
        source=source,
        destination=destination,
        payload={"key": key, "holder": holder, "version": version},
    )


def propagate_message(
    source: Address,
    destination: Address,
    *,
    key: str,
    holder: Address,
    version: int,
    deleted: bool,
    query: str,
    level: int,
    recbreadth: int,
) -> Message:
    """Breadth-first update propagation step (§3 strategy 3 over messages).

    ``query``/``level`` carry the routing state exactly like a QUERY;
    the full entry rides along so every responsible peer reached installs
    it immediately.
    """
    return Message(
        kind=MessageKind.PROPAGATE,
        source=source,
        destination=destination,
        payload={
            "key": key,
            "holder": holder,
            "version": version,
            "deleted": deleted,
            "query": query,
            "level": level,
            "recbreadth": recbreadth,
        },
    )


def propagate_ack(request: Message, reached: list[Address]) -> Message:
    """Aggregated acknowledgement: every replica this subtree installed."""
    return Message(
        kind=MessageKind.PROPAGATE_ACK,
        source=request.destination,
        destination=request.source,
        payload={"reached": list(reached)},
        in_reply_to=request.message_id,
    )


def ping(source: Address, destination: Address) -> Message:
    """Liveness probe."""
    return Message(kind=MessageKind.PING, source=source, destination=destination)


def pong(request: Message) -> Message:
    """Liveness reply."""
    return Message(
        kind=MessageKind.PONG,
        source=request.destination,
        destination=request.source,
        in_reply_to=request.message_id,
    )
