"""Typed messages of the simulated P-Grid protocol.

The paper's algorithms are specified as function calls between peers; to
measure communication cost as a *system* rather than inferring it, the
:mod:`repro.net` substrate executes them as explicit messages.  Each message
carries source/destination addresses and a payload mirroring the pseudo-code
arguments.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.peer import Address

_message_ids = itertools.count(1)


class MessageKind(enum.Enum):
    """Protocol message types."""

    QUERY = "query"
    QUERY_RESPONSE = "query_response"
    BREADTH_QUERY = "breadth_query"
    BREADTH_RESPONSE = "breadth_response"
    RANGE_QUERY = "range_query"
    RANGE_RESPONSE = "range_response"
    EXCHANGE = "exchange"
    UPDATE = "update"
    UPDATE_ACK = "update_ack"
    PROPAGATE = "propagate"
    PROPAGATE_ACK = "propagate_ack"
    PING = "ping"
    PONG = "pong"


#: Request kind -> reply kind for the search family.
_RESPONSE_KIND = {
    MessageKind.BREADTH_QUERY: MessageKind.BREADTH_RESPONSE,
    MessageKind.RANGE_QUERY: MessageKind.RANGE_RESPONSE,
}


@dataclass(frozen=True)
class Message:
    """One protocol message.

    ``payload`` carries kind-specific fields (documented per helper below);
    ``message_id`` is unique per process and links responses to requests via
    ``in_reply_to``.
    """

    kind: MessageKind
    source: Address
    destination: Address
    payload: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))
    in_reply_to: int | None = None


def query_message(
    source: Address,
    destination: Address,
    query: str,
    level: int,
    *,
    budget: int | None = None,
    retry_spent: float = 0.0,
) -> Message:
    """Fig. 2 forward: ``query(peer(destination), query, level)``.

    ``budget`` is the message budget remaining for the receiver's subtree
    (``None`` lets the receiver apply its own configured limit);
    ``retry_spent`` seeds the receiver's accumulated retry backoff so one
    :class:`~repro.faults.RetryPolicy` deadline governs the whole
    operation across hops.
    """
    payload: dict[str, Any] = {"query": query, "level": level}
    if budget is not None:
        payload["budget"] = budget
    if retry_spent:
        payload["retry_spent"] = retry_spent
    return Message(
        kind=MessageKind.QUERY,
        source=source,
        destination=destination,
        payload=payload,
    )


def query_response(
    request: Message,
    *,
    found: bool,
    responder: Address | None,
    refs: list[dict] | None = None,
    messages: int = 0,
    failed: int = 0,
    retry_delay: float = 0.0,
    budget: int | None = None,
) -> Message:
    """Answer to a :data:`MessageKind.QUERY` message.

    ``messages`` / ``failed`` are the receiver subtree's *deltas* (the
    sender already accounted the request's own delivery); ``retry_delay``
    is the operation's *cumulative* backoff and ``budget`` the remaining
    message budget after the subtree ran.
    """
    payload: dict[str, Any] = {
        "found": found,
        "responder": responder,
        "refs": refs or [],
        "messages": messages,
        "failed": failed,
        "retry_delay": retry_delay,
    }
    if budget is not None:
        payload["budget"] = budget
    return Message(
        kind=MessageKind.QUERY_RESPONSE,
        source=request.destination,
        destination=request.source,
        payload=payload,
        in_reply_to=request.message_id,
    )


def breadth_message(
    source: Address,
    destination: Address,
    *,
    query: str,
    level: int,
    recbreadth: int,
    enumerate_subtree: bool = False,
    seen: list[Address],
    budget: int,
    retry_spent: float = 0.0,
    collect: str | None = None,
) -> Message:
    """Breadth-first fan-out step (§3 strategy 3 / range enumeration).

    ``seen`` carries the walk's visited set (delivery is synchronous, so
    threading it through payloads is equivalent to the in-process shared
    set).  With ``collect`` the message is a :data:`MessageKind.RANGE_QUERY`:
    responsible peers additionally return their index entries under the
    *collect* prefix, exactly what the in-process range scan reads off
    responder stores.
    """
    payload: dict[str, Any] = {
        "query": query,
        "level": level,
        "recbreadth": recbreadth,
        "enumerate_subtree": enumerate_subtree,
        "seen": seen,
        "budget": budget,
        "retry_spent": retry_spent,
    }
    kind = MessageKind.BREADTH_QUERY
    if collect is not None:
        kind = MessageKind.RANGE_QUERY
        payload["collect"] = collect
    return Message(kind=kind, source=source, destination=destination, payload=payload)


def breadth_response(
    request: Message,
    *,
    responders: list[Address],
    seen: list[Address],
    messages: int,
    failed: int,
    retry_delay: float,
    budget: int,
    entries: dict[Address, list[dict]] | None = None,
) -> Message:
    """Answer to a BREADTH_QUERY / RANGE_QUERY message.

    ``responders`` and ``entries`` are the receiver subtree's additions;
    ``seen`` is the walk's full visited set after the subtree ran.
    """
    payload: dict[str, Any] = {
        "responders": responders,
        "seen": seen,
        "messages": messages,
        "failed": failed,
        "retry_delay": retry_delay,
        "budget": budget,
    }
    if entries is not None:
        payload["entries"] = entries
    return Message(
        kind=_RESPONSE_KIND[request.kind],
        source=request.destination,
        destination=request.source,
        payload=payload,
        in_reply_to=request.message_id,
    )


def update_message(
    source: Address, destination: Address, key: str, holder: Address, version: int
) -> Message:
    """Deliver a (possibly fresher) index entry to a responsible peer."""
    return Message(
        kind=MessageKind.UPDATE,
        source=source,
        destination=destination,
        payload={"key": key, "holder": holder, "version": version},
    )


def propagate_message(
    source: Address,
    destination: Address,
    *,
    key: str,
    holder: Address,
    version: int,
    deleted: bool,
    query: str,
    level: int,
    recbreadth: int,
    seen: list[Address] | None = None,
    budget: int | None = None,
    retry_spent: float = 0.0,
) -> Message:
    """Breadth-first update propagation step (§3 strategy 3 over messages).

    ``query``/``level`` carry the routing state exactly like a QUERY; the
    full entry rides along so every responsible peer reached installs it
    immediately.  ``seen``/``budget``/``retry_spent`` thread the walk
    state exactly like :func:`breadth_message` (older senders that omit
    them get an empty visited set and the receiver's own budget).
    """
    payload: dict[str, Any] = {
        "key": key,
        "holder": holder,
        "version": version,
        "deleted": deleted,
        "query": query,
        "level": level,
        "recbreadth": recbreadth,
    }
    if seen is not None:
        payload["seen"] = seen
    if budget is not None:
        payload["budget"] = budget
    if retry_spent:
        payload["retry_spent"] = retry_spent
    return Message(
        kind=MessageKind.PROPAGATE,
        source=source,
        destination=destination,
        payload=payload,
    )


def propagate_ack(
    request: Message,
    reached: list[Address],
    *,
    seen: list[Address] | None = None,
    messages: int = 0,
    failed: int = 0,
    retry_delay: float = 0.0,
    budget: int | None = None,
) -> Message:
    """Aggregated acknowledgement: every replica this subtree installed."""
    payload: dict[str, Any] = {
        "reached": list(reached),
        "messages": messages,
        "failed": failed,
        "retry_delay": retry_delay,
    }
    if seen is not None:
        payload["seen"] = seen
    if budget is not None:
        payload["budget"] = budget
    return Message(
        kind=MessageKind.PROPAGATE_ACK,
        source=request.destination,
        destination=request.source,
        payload=payload,
        in_reply_to=request.message_id,
    )


def ping(source: Address, destination: Address) -> Message:
    """Liveness probe."""
    return Message(kind=MessageKind.PING, source=source, destination=destination)


def pong(request: Message) -> Message:
    """Liveness reply."""
    return Message(
        kind=MessageKind.PONG,
        source=request.destination,
        destination=request.source,
        in_reply_to=request.message_id,
    )
