"""Centralized index server baseline (paper §6 comparison).

One server stores the complete index (``O(D)`` storage); every client query
is one round trip to the server, so the *server's* query load grows
linearly with the number of clients (``O(N)``) — the bottleneck the §6
table highlights.  Napster is the era's canonical instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import keys as keyspace
from repro.core.peer import Address
from repro.core.storage import DataItem
from repro.baselines.interface import SystemSearchResult


@dataclass
class CentralServerStats:
    """Load counters of the server."""

    queries_served: int = 0
    publishes: int = 0
    failures: int = 0


class CentralIndexServer:
    """A single always-structured index server with optional availability.

    ``p_online`` models server downtime; a failed query costs its message
    but returns no result (clients have no alternative — contrast with
    P-Grid's ``refmax`` redundancy).
    """

    def __init__(
        self, *, p_online: float = 1.0, rng: random.Random | None = None
    ) -> None:
        if not 0.0 < p_online <= 1.0:
            raise ValueError(f"p_online must be in (0, 1], got {p_online}")
        self.p_online = p_online
        self._rng = rng or random.Random()
        self._index: dict[str, set[Address]] = {}
        self.stats = CentralServerStats()

    # -- SearchSystem interface ----------------------------------------------------

    def publish(self, item: DataItem, holder: Address) -> int:
        """Register *item* at the server: one message."""
        keyspace.validate_key(item.key)
        self._index.setdefault(item.key, set()).add(holder)
        self.stats.publishes += 1
        return 1

    def search(self, start: Address, key: str) -> SystemSearchResult:  # noqa: ARG002
        """One round trip to the server."""
        keyspace.validate_key(key)
        if self.p_online < 1.0 and self._rng.random() >= self.p_online:
            self.stats.failures += 1
            return SystemSearchResult(found=False, messages=1)
        self.stats.queries_served += 1
        found = any(
            keyspace.in_prefix_relation(stored, key) for stored in self._index
        )
        return SystemSearchResult(found=found, messages=1)

    def holders(self, key: str) -> set[Address]:
        """Exact-key holders currently registered."""
        return set(self._index.get(key, set()))

    # -- storage metrics ---------------------------------------------------------------

    @property
    def index_size(self) -> int:
        """Total index entries on the server (``O(D)``)."""
        return sum(len(holders) for holders in self._index.values())

    def storage_per_node(self) -> float:
        """All storage concentrates on the one server."""
        return float(self.index_size)

    def max_storage_any_node(self) -> int:
        return self.index_size
