"""Baseline systems the paper compares against: Gnutella-style flooding
(§1) and central / replicated index servers (§6)."""

from repro.baselines.central import CentralIndexServer, CentralServerStats
from repro.baselines.flooding import FloodingStats, GnutellaNetwork
from repro.baselines.interface import (
    PGridSearchSystem,
    SearchSystem,
    SystemSearchResult,
)
from repro.baselines.replicated import (
    ReplicatedIndexServers,
    ReplicatedServerStats,
)

__all__ = [
    "CentralIndexServer",
    "CentralServerStats",
    "FloodingStats",
    "GnutellaNetwork",
    "PGridSearchSystem",
    "ReplicatedIndexServers",
    "ReplicatedServerStats",
    "SearchSystem",
    "SystemSearchResult",
]
