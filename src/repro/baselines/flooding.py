"""Gnutella-style flooding network (paper §1's motivating baseline).

No index exists: every peer only knows its overlay neighbours and its own
files.  A search floods the overlay breadth-first up to a TTL; every edge
traversal to an online peer costs one message.  This reproduces the §1
claim that broadcast search is "extremely costly in terms of communication"
— query cost grows linearly with the number of reachable peers, compared to
P-Grid's ``O(log N)``.

The overlay is a ring plus random chords (a connected small-world graph,
matching measured Gnutella topologies closely enough for cost *shape*).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import keys as keyspace
from repro.core.peer import Address
from repro.core.storage import DataItem
from repro.baselines.interface import SystemSearchResult


@dataclass
class FloodingStats:
    """Aggregate traffic counters."""

    searches: int = 0
    messages: int = 0
    hits: int = 0
    offline_skips: int = 0


class GnutellaNetwork:
    """A flooding file-sharing overlay with optional per-contact churn."""

    def __init__(
        self,
        n_peers: int,
        *,
        extra_edges_per_peer: int = 3,
        rng: random.Random | None = None,
        p_online: float = 1.0,
        default_ttl: int = 7,
    ) -> None:
        if n_peers < 2:
            raise ValueError(f"n_peers must be >= 2, got {n_peers}")
        if extra_edges_per_peer < 0:
            raise ValueError(
                f"extra_edges_per_peer must be >= 0, got {extra_edges_per_peer}"
            )
        if not 0.0 < p_online <= 1.0:
            raise ValueError(f"p_online must be in (0, 1], got {p_online}")
        if default_ttl < 1:
            raise ValueError(f"default_ttl must be >= 1, got {default_ttl}")
        self.n_peers = n_peers
        self.p_online = p_online
        self.default_ttl = default_ttl
        self._rng = rng or random.Random()
        self._neighbors: dict[Address, set[Address]] = {
            address: set() for address in range(n_peers)
        }
        self._files: dict[Address, set[str]] = {
            address: set() for address in range(n_peers)
        }
        self.stats = FloodingStats()
        self._build_overlay(extra_edges_per_peer)

    def _build_overlay(self, extra_edges_per_peer: int) -> None:
        """Ring for connectivity + random chords for small-world reach."""
        for address in range(self.n_peers):
            self._link(address, (address + 1) % self.n_peers)
        for address in range(self.n_peers):
            for _ in range(extra_edges_per_peer):
                other = self._rng.randrange(self.n_peers)
                if other != address:
                    self._link(address, other)

    def _link(self, a: Address, b: Address) -> None:
        self._neighbors[a].add(b)
        self._neighbors[b].add(a)

    def neighbors(self, address: Address) -> set[Address]:
        """Overlay neighbours of *address*."""
        return set(self._neighbors[address])

    def average_degree(self) -> float:
        """Mean overlay degree."""
        return sum(len(n) for n in self._neighbors.values()) / self.n_peers

    # -- SearchSystem interface -------------------------------------------------

    def publish(self, item: DataItem, holder: Address) -> int:
        """Store a file locally — flooding has no index, so zero messages."""
        keyspace.validate_key(item.key)
        self._files[holder].add(item.key)
        return 0

    def search(
        self,
        start: Address,
        key: str,
        *,
        ttl: int | None = None,
        stop_on_hit: bool = False,
    ) -> SystemSearchResult:
        """Flood from *start* up to *ttl* hops; count every delivered copy.

        A peer hit by the flood scans its local files; the search succeeds
        if any reached peer holds a key in prefix relation with the query
        (the same answer semantics as the P-Grid leaf lookup).  Real
        Gnutella keeps flooding after a hit (it collects many answers) —
        that is the cost §1 criticizes; *stop_on_hit* models a
        first-answer-terminates client instead.
        """
        keyspace.validate_key(key)
        hops = ttl if ttl is not None else self.default_ttl
        if hops < 1:
            raise ValueError(f"ttl must be >= 1, got {hops}")
        self.stats.searches += 1
        visited: set[Address] = {start}
        frontier = [start]
        messages = 0
        found = self._local_match(start, key)
        for _ in range(hops):
            if not frontier or (found and stop_on_hit):
                break
            next_frontier: list[Address] = []
            for address in frontier:
                for neighbor in sorted(self._neighbors[address]):
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    if self.p_online < 1.0 and self._rng.random() >= self.p_online:
                        self.stats.offline_skips += 1
                        continue
                    messages += 1
                    next_frontier.append(neighbor)
                    if self._local_match(neighbor, key):
                        found = True
            frontier = next_frontier
        self.stats.messages += messages
        if found:
            self.stats.hits += 1
        return SystemSearchResult(found=found, messages=messages)

    def _local_match(self, address: Address, key: str) -> bool:
        return any(
            keyspace.in_prefix_relation(stored, key)
            for stored in self._files[address]
        )

    # -- storage metrics ----------------------------------------------------------

    def storage_per_node(self) -> float:
        """Flooding keeps no index — only neighbour lists."""
        return self.average_degree()

    def max_storage_any_node(self) -> int:
        return max(len(n) for n in self._neighbors.values())
