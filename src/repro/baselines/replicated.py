"""Replicated central servers (paper §6's "centralized replicated server
architectures").

``R`` full copies of the index: queries go to a random replica (load is
spread ``N/R`` per server but total server load still grows ``O(N)``);
publishes must reach every replica (``R`` messages).  Storage per server
remains ``O(D)`` — replication buys availability and load spreading, not
the logarithmic scaling of P-Grid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import keys as keyspace
from repro.core.peer import Address
from repro.core.storage import DataItem
from repro.baselines.interface import SystemSearchResult
from repro.faults.retry import RetryPolicy

#: The historical client behavior: primary attempt + one fail-over, no
#: backoff.  Expressed through the shared policy type so baseline and
#: P-Grid comparisons use identical failure semantics (and can be swept
#: over the same policies).
DEFAULT_CLIENT_RETRY = RetryPolicy(
    attempts=2, base_delay=0.0, backoff_factor=1.0, max_delay=0.0
)


@dataclass
class ReplicatedServerStats:
    """Per-replica and aggregate load counters."""

    queries_per_replica: list[int] = field(default_factory=list)
    publishes: int = 0
    failures: int = 0
    retry_backoff: float = 0.0
    deadline_giveups: int = 0

    def total_queries(self) -> int:
        """Queries served across all replicas."""
        return sum(self.queries_per_replica)

    def max_replica_load(self) -> int:
        """Hottest replica's query count."""
        return max(self.queries_per_replica, default=0)


class ReplicatedIndexServers:
    """``R`` identical full-index replicas behind random client choice."""

    def __init__(
        self,
        replicas: int,
        *,
        p_online: float = 1.0,
        rng: random.Random | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if not 0.0 < p_online <= 1.0:
            raise ValueError(f"p_online must be in (0, 1], got {p_online}")
        self.replicas = replicas
        self.p_online = p_online
        self.retry = retry or DEFAULT_CLIENT_RETRY
        self._rng = rng or random.Random()
        self._indexes: list[dict[str, set[Address]]] = [
            {} for _ in range(replicas)
        ]
        self.stats = ReplicatedServerStats(queries_per_replica=[0] * replicas)

    # -- SearchSystem interface -----------------------------------------------------

    def publish(self, item: DataItem, holder: Address) -> int:
        """Write-all: one message per replica."""
        keyspace.validate_key(item.key)
        for index in self._indexes:
            index.setdefault(item.key, set()).add(holder)
        self.stats.publishes += 1
        return self.replicas

    def search(self, start: Address, key: str) -> SystemSearchResult:  # noqa: ARG002
        """Round trips to uniformly chosen replicas per the retry policy
        (default: primary attempt + one fail-over).

        Backoff is simulated time, accounted identically to the P-Grid
        engines: retry *n* costs ``retry.delay_before(n)``, accumulated
        on ``stats.retry_backoff``, and a ``deadline`` forfeits the
        remaining attempts once the per-operation budget is spent.
        """
        keyspace.validate_key(key)
        messages = 0
        spent = 0.0
        for attempt in range(1, self.retry.attempts + 1):
            if attempt > 1:
                delay = self.retry.delay_before(attempt)
                if (
                    self.retry.deadline is not None
                    and spent + delay > self.retry.deadline
                ):
                    self.stats.deadline_giveups += 1
                    break
                spent += delay
                self.stats.retry_backoff += delay
            replica = self._rng.randrange(self.replicas)
            messages += 1
            if self.p_online < 1.0 and self._rng.random() >= self.p_online:
                self.stats.failures += 1
                continue
            self.stats.queries_per_replica[replica] += 1
            found = any(
                keyspace.in_prefix_relation(stored, key)
                for stored in self._indexes[replica]
            )
            return SystemSearchResult(found=found, messages=messages)
        return SystemSearchResult(found=False, messages=messages)

    # -- storage metrics ----------------------------------------------------------------

    @property
    def index_size_per_replica(self) -> int:
        """Entries on each replica (they are identical)."""
        if not self._indexes:
            return 0
        return sum(len(holders) for holders in self._indexes[0].values())

    def storage_per_node(self) -> float:
        return float(self.index_size_per_replica)

    def max_storage_any_node(self) -> int:
        return self.index_size_per_replica
