"""Common interface for the search systems compared in §6.

The paper motivates P-Grid against two alternatives: Gnutella-style
flooding (no index, broadcast search — §1) and centralized/replicated index
servers (§6 comparison table).  :class:`SearchSystem` is the minimal common
surface so the scaling benchmark can sweep all of them identically, and
:class:`PGridSearchSystem` adapts the core library to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.core.search import SearchEngine
from repro.core.storage import DataItem


@dataclass
class SystemSearchResult:
    """Uniform search outcome across systems."""

    found: bool
    messages: int


class SearchSystem(Protocol):
    """A queryable distributed search system."""

    def publish(self, item: DataItem, holder: Address) -> int:
        """Index *item* as stored at *holder*; returns messages spent."""
        ...  # pragma: no cover - protocol

    def search(self, start: Address, key: str) -> SystemSearchResult:
        """Search for *key* starting at peer *start*."""
        ...  # pragma: no cover - protocol

    def storage_per_node(self) -> float:
        """Average index entries stored per participating node."""
        ...  # pragma: no cover - protocol

    def max_storage_any_node(self) -> int:
        """Worst-case index entries on a single node (the bottleneck)."""
        ...  # pragma: no cover - protocol


class PGridSearchSystem:
    """Adapter: the core P-Grid library behind the comparison interface."""

    def __init__(self, grid: PGrid, engine: SearchEngine | None = None) -> None:
        self.grid = grid
        self.engine = engine or SearchEngine(grid)

    def publish(self, item: DataItem, holder: Address) -> int:
        """Seed-index insert (messages for insertion are studied separately
        in the Fig. 5 / table 6 experiments; the §6 comparison concerns
        query cost and storage)."""
        self.grid.seed_index([(item, holder)])
        return 0

    def search(self, start: Address, key: str) -> SystemSearchResult:
        result = self.engine.query_from(start, key)
        return SystemSearchResult(found=result.found, messages=result.messages)

    def storage_per_node(self) -> float:
        if len(self.grid) == 0:
            return 0.0
        total = sum(peer.index_footprint() for peer in self.grid.peers())
        return total / len(self.grid)

    def max_storage_any_node(self) -> int:
        return self.grid.max_index_footprint()
