"""k-ary P-Grid: the §6 extended-alphabet extension, natively.

Instead of reducing text to binary keys (``repro.text``), this subpackage
generalizes the access structure itself to an arbitrary ordered alphabet:
one character per trie level, ``k − 1`` sibling reference sets per level.
The AB9 benchmark compares the two approaches on the same word workload.
"""

from repro.kary.grid import KaryGrid
from repro.kary.keyspace import DEFAULT_ALPHABET, KeySpace
from repro.kary.peer import KaryItem, KaryPeer, KaryRef, KaryRoutingTable
from repro.kary.protocol import (
    KaryBuildReport,
    KaryExchangeEngine,
    KarySearchEngine,
    KarySearchResult,
    build_kary_grid,
)

__all__ = [
    "DEFAULT_ALPHABET",
    "KaryBuildReport",
    "KaryExchangeEngine",
    "KaryGrid",
    "KaryItem",
    "KaryPeer",
    "KaryRef",
    "KaryRoutingTable",
    "KarySearchEngine",
    "KarySearchResult",
    "KeySpace",
    "build_kary_grid",
]
