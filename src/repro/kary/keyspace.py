"""Key space over an extended alphabet (paper §6).

The binary P-Grid generalizes directly: keys are strings over an ordered
alphabet of ``k`` symbols, a peer's path is such a string, and at every
level a peer keeps references for each of the ``k − 1`` *sibling* symbols
(the other branches of the node its path passes through).  §6 notes this
"would allow to directly support trie search structures" — one character
per level instead of ``ceil(log2 k)`` binary levels.

Symbols are single characters; the default alphabet is the same
space+a..z set the binary reduction uses, so the two approaches index the
same words and can be compared head to head (ablation AB9).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import InvalidKeyError

#: Default alphabet, shared with :mod:`repro.text.encoding`.
DEFAULT_ALPHABET = " abcdefghijklmnopqrstuvwxyz"


class KeySpace:
    """A finite ordered alphabet and its string-key algebra."""

    def __init__(self, alphabet: str = DEFAULT_ALPHABET) -> None:
        if len(alphabet) < 2:
            raise ValueError("alphabet needs at least two symbols")
        if len(set(alphabet)) != len(alphabet):
            raise ValueError("alphabet contains duplicate symbols")
        self.alphabet = alphabet
        self._symbols = set(alphabet)

    @property
    def arity(self) -> int:
        """Number of symbols ``k``."""
        return len(self.alphabet)

    def is_valid(self, key: str) -> bool:
        """Whether *key* uses only alphabet symbols."""
        return isinstance(key, str) and all(c in self._symbols for c in key)

    def validate(self, key: str) -> str:
        """Return *key*, raising :class:`InvalidKeyError` if malformed."""
        if not self.is_valid(key):
            raise InvalidKeyError(key)
        return key

    def siblings(self, symbol: str) -> Iterator[str]:
        """All symbols other than *symbol*, in alphabet order."""
        if symbol not in self._symbols:
            raise InvalidKeyError(symbol)
        for candidate in self.alphabet:
            if candidate != symbol:
                yield candidate

    def random_symbol(self, rng: random.Random, *, excluding: str | None = None) -> str:
        """A uniform symbol, optionally excluding one."""
        if excluding is None:
            return rng.choice(self.alphabet)
        choices = [c for c in self.alphabet if c != excluding]
        if not choices:
            raise ValueError("cannot exclude the only symbol")
        return rng.choice(choices)

    def random_key(self, length: int, rng: random.Random) -> str:
        """A uniform key of exactly *length* symbols."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        return "".join(rng.choice(self.alphabet) for _ in range(length))

    @staticmethod
    def common_prefix(a: str, b: str) -> str:
        """Longest common prefix (alphabet-agnostic)."""
        limit = min(len(a), len(b))
        i = 0
        while i < limit and a[i] == b[i]:
            i += 1
        return a[:i]

    @staticmethod
    def in_prefix_relation(a: str, b: str) -> bool:
        """Whether one key is a prefix of the other."""
        return a.startswith(b) or b.startswith(a)
