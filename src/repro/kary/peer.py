"""Peer state for the k-ary P-Grid.

A binary peer keeps one reference set per level (the single sibling); a
k-ary peer keeps up to ``k − 1`` sets per level — one per sibling symbol.
The reference invariant generalizes verbatim: a reference stored at level
``i`` under symbol ``s`` points to a peer whose path starts with
``prefix(i-1) + s`` where ``s != path[i-1]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.storage import DataStore
from repro.errors import InvalidKeyError
from repro.kary.keyspace import KeySpace

Address = int


@dataclass(frozen=True)
class KaryItem:
    """An indexed item with an extended-alphabet key.

    Duck-typed stand-in for :class:`repro.core.storage.DataItem`, whose
    constructor enforces binary keys; the shared :class:`DataStore` only
    relies on ``.key`` / ``.value``.
    """

    key: str
    value: Any = None


@dataclass(frozen=True)
class KaryRef:
    """An index entry with an extended-alphabet key (duck-typed
    :class:`~repro.core.storage.DataRef`)."""

    key: str
    holder: Address
    version: int = 0
    deleted: bool = False


class KaryRoutingTable:
    """Per-(level, symbol) bounded reference sets."""

    def __init__(self, refmax: int) -> None:
        if refmax < 1:
            raise ValueError(f"refmax must be >= 1, got {refmax}")
        self.refmax = refmax
        # level (1-based) -> symbol -> insertion-ordered unique addresses
        self._levels: dict[int, dict[str, list[Address]]] = {}

    def refs(self, level: int, symbol: str) -> list[Address]:
        """References at *level* for sibling *symbol* (copy)."""
        if level < 1:
            raise IndexError(f"levels are 1-based, got {level}")
        return list(self._levels.get(level, {}).get(symbol, []))

    def add_ref(self, level: int, symbol: str, address: Address) -> bool:
        """Insert if absent and capacity allows; True when changed."""
        if level < 1:
            raise IndexError(f"levels are 1-based, got {level}")
        slot = self._levels.setdefault(level, {}).setdefault(symbol, [])
        if address in slot or len(slot) >= self.refmax:
            return False
        slot.append(address)
        return True

    def merge_refs(
        self,
        level: int,
        symbol: str,
        candidates: list[Address],
        rng: random.Random,
    ) -> None:
        """Union + down-sample to ``refmax`` (the paper's random_select)."""
        slot = self._levels.setdefault(level, {}).setdefault(symbol, [])
        union = list(dict.fromkeys([*slot, *candidates]))
        if len(union) > self.refmax:
            union = rng.sample(union, self.refmax)
        slot.clear()
        slot.extend(union)

    def remove_ref(self, level: int, symbol: str, address: Address) -> bool:
        """Drop one reference; True when it existed."""
        slot = self._levels.get(level, {}).get(symbol)
        if not slot or address not in slot:
            return False
        slot.remove(address)
        return True

    def iter_all(self) -> Iterator[tuple[int, str, list[Address]]]:
        """Yield (level, symbol, refs) triples, sorted."""
        for level in sorted(self._levels):
            for symbol in sorted(self._levels[level]):
                refs = self._levels[level][symbol]
                if refs:
                    yield level, symbol, list(refs)

    def total_refs(self) -> int:
        """Total stored references."""
        return sum(
            len(refs)
            for symbols in self._levels.values()
            for refs in symbols.values()
        )


class KaryPeer:
    """One participant of a k-ary P-Grid."""

    __slots__ = ("address", "space", "_path", "routing", "store", "buddies")

    def __init__(self, address: Address, space: KeySpace, refmax: int) -> None:
        self.address = address
        self.space = space
        self._path = ""
        self.routing = KaryRoutingTable(refmax)
        self.store = DataStore()
        self.buddies: set[Address] = set()

    @property
    def path(self) -> str:
        """The key-space path this peer is responsible for."""
        return self._path

    @property
    def depth(self) -> int:
        """Path length in symbols."""
        return len(self._path)

    def extend_path(self, symbol: str) -> None:
        """Specialize by one symbol."""
        if symbol not in self.space.alphabet or len(symbol) != 1:
            raise InvalidKeyError(symbol)
        self._path += symbol
        self.buddies.clear()

    def set_path(self, path: str) -> None:
        """Force-set the path (tests/snapshots)."""
        self.space.validate(path)
        self._path = path
        self.buddies.clear()

    def responsible_for(self, query: str) -> bool:
        """Prefix-relation responsibility, as in the binary grid."""
        return KeySpace.in_prefix_relation(self._path, query)

    def __repr__(self) -> str:
        return f"KaryPeer(addr={self.address}, path={self._path!r})"
