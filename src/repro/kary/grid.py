"""The k-ary P-Grid container (paper §6 extension)."""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.grid import OnlineOracle, AlwaysOnline
from repro.errors import DuplicatePeerError, UnknownPeerError
from repro.kary.keyspace import KeySpace
from repro.kary.peer import Address, KaryItem, KaryPeer, KaryRef


class KaryGrid:
    """A population of :class:`KaryPeer` over one :class:`KeySpace`."""

    def __init__(
        self,
        space: KeySpace,
        *,
        maxl: int = 3,
        refmax: int = 2,
        recmax: int = 1,
        recursion_fanout: int = 2,
        rng: random.Random | None = None,
        online_oracle: OnlineOracle | None = None,
    ) -> None:
        if maxl < 1:
            raise ValueError(f"maxl must be >= 1, got {maxl}")
        if refmax < 1:
            raise ValueError(f"refmax must be >= 1, got {refmax}")
        if recmax < 0:
            raise ValueError(f"recmax must be >= 0, got {recmax}")
        if recursion_fanout < 1:
            raise ValueError(
                f"recursion_fanout must be >= 1, got {recursion_fanout}"
            )
        self.space = space
        self.maxl = maxl
        self.refmax = refmax
        self.recmax = recmax
        self.recursion_fanout = recursion_fanout
        self.rng = rng or random.Random()
        self.online_oracle: OnlineOracle = online_oracle or AlwaysOnline()
        self._peers: dict[Address, KaryPeer] = {}
        self._next_address = 0

    def add_peer(self) -> KaryPeer:
        """Register a fresh peer."""
        address = self._next_address
        if address in self._peers:
            raise DuplicatePeerError(address)
        peer = KaryPeer(address, self.space, self.refmax)
        self._peers[address] = peer
        self._next_address += 1
        return peer

    def add_peers(self, count: int) -> list[KaryPeer]:
        """Register *count* fresh peers."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.add_peer() for _ in range(count)]

    def peer(self, address: Address) -> KaryPeer:
        """Resolve an address."""
        try:
            return self._peers[address]
        except KeyError:
            raise UnknownPeerError(address) from None

    def has_peer(self, address: Address) -> bool:
        """Whether *address* is registered."""
        return address in self._peers

    def peers(self) -> Iterator[KaryPeer]:
        """Iterate peers in address order."""
        for address in sorted(self._peers):
            yield self._peers[address]

    def addresses(self) -> list[Address]:
        """Sorted addresses."""
        return sorted(self._peers)

    def __len__(self) -> int:
        return len(self._peers)

    def is_online(self, address: Address) -> bool:
        """Availability check."""
        return self.online_oracle.is_online(address)

    # -- statistics -----------------------------------------------------------

    def average_path_length(self) -> float:
        """Mean path length in symbols."""
        if not self._peers:
            return 0.0
        return sum(p.depth for p in self._peers.values()) / len(self._peers)

    def replicas_for_key(self, query: str) -> list[Address]:
        """Peers responsible for *query*."""
        self.space.validate(query)
        return [p.address for p in self.peers() if p.responsible_for(query)]

    def total_routing_refs(self) -> int:
        """Total references stored (storage-cost metric)."""
        return sum(p.routing.total_refs() for p in self._peers.values())

    def seed_index(self, items: list[tuple[KaryItem, Address]]) -> int:
        """Install index entries at every responsible peer (bootstrap).

        Keys are validated against this grid's key space (items/refs are
        the k-ary duck-typed variants, since the core classes enforce
        binary keys).
        """
        installed = 0
        for item, holder in items:
            self.space.validate(item.key)
            self.peer(holder).store.store_item(item)
            ref = KaryRef(key=item.key, holder=holder, version=0)
            for address in self.replicas_for_key(item.key):
                self.peer(address).store.add_ref(ref)
                installed += 1
        return installed

    # -- invariant audit ---------------------------------------------------------

    def audit_routing(self) -> list[str]:
        """Generalized §2 invariant: a ref at (level, symbol) points to a
        peer whose path starts with ``prefix(level-1) + symbol``, with
        ``symbol`` differing from the holder's own symbol at that level."""
        violations: list[str] = []
        for peer in self.peers():
            for level, symbol, refs in peer.routing.iter_all():
                if level > peer.depth:
                    violations.append(
                        f"peer {peer.address}: refs at level {level} beyond "
                        f"path depth {peer.depth}"
                    )
                    continue
                if symbol == peer.path[level - 1]:
                    violations.append(
                        f"peer {peer.address}: refs under own symbol "
                        f"{symbol!r} at level {level}"
                    )
                    continue
                expected = peer.path[: level - 1] + symbol
                for address in refs:
                    if address not in self._peers:
                        violations.append(
                            f"peer {peer.address}: dangling ref {address}"
                        )
                        continue
                    target = self._peers[address].path
                    if not target.startswith(expected):
                        violations.append(
                            f"peer {peer.address}: ref {address} at level "
                            f"{level}/{symbol!r} has path {target!r}, "
                            f"expected prefix {expected!r}"
                        )
        return violations
