"""Exchange and search for the k-ary P-Grid.

Fig. 2 and Fig. 3 generalize mechanically once "the complement bit" is
replaced by "a sibling symbol":

* **search** — at a divergence the query's next symbol names *which* of
  the ``k − 1`` sibling reference sets to follow;
* **exchange** — case 1 splits the two peers onto two *distinct random*
  symbols; cases 2/3 specialize the shorter peer onto a random symbol
  different from the longer peer's; case 4 forwards each peer to the
  other's references under the partner's symbol (recursion bounded by
  ``recmax`` and ``recursion_fanout``).

One deliberate deviation from the binary pseudo-code, required by arity:
in case 4 the two diverged peers also insert *each other* into their
tables.  With ``k − 1`` sibling sets per level, the probability that the
random-meeting process alone fills a given (level, symbol) slot shrinks
with ``k``; without mutual insertion large alphabets never become
routable.  (For ``k = 2`` the deviation is harmless — covered by the AB1
ablation of the binary grid.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kary.grid import KaryGrid
from repro.kary.keyspace import KeySpace
from repro.kary.peer import Address, KaryPeer


@dataclass
class KarySearchResult:
    """Outcome of one k-ary search."""

    query: str
    start: Address
    found: bool
    responder: Address | None
    messages: int
    failed_attempts: int


@dataclass
class KaryBuildReport:
    """Outcome of one construction run."""

    converged: bool
    exchanges: int
    meetings: int
    average_depth: float


class KaryExchangeEngine:
    """The generalized Fig. 3 protocol."""

    def __init__(self, grid: KaryGrid) -> None:
        self.grid = grid
        self.calls = 0
        self.meetings = 0

    def meet(self, address1: Address, address2: Address) -> int:
        """One meeting; returns exchange calls triggered."""
        if address1 == address2:
            raise ValueError("a peer cannot meet itself")
        before = self.calls
        self.meetings += 1
        self._exchange(self.grid.peer(address1), self.grid.peer(address2), 0)
        return self.calls - before

    def _exchange(self, a1: KaryPeer, a2: KaryPeer, depth: int) -> None:
        self.calls += 1
        grid = self.grid
        commonpath = KeySpace.common_prefix(a1.path, a2.path)
        lc = len(commonpath)

        if lc > 0:
            self._exchange_refs(a1, a2, lc)

        l1 = a1.depth - lc
        l2 = a2.depth - lc
        rng = grid.rng

        if l1 == 0 and l2 == 0:
            if lc < grid.maxl:
                first = grid.space.random_symbol(rng)
                second = grid.space.random_symbol(rng, excluding=first)
                a1.extend_path(first)
                a2.extend_path(second)
                a1.routing.add_ref(lc + 1, second, a2.address)
                a2.routing.add_ref(lc + 1, first, a1.address)
                self._handover(a1, a2)
                self._handover(a2, a1)
            else:
                a1.buddies.add(a2.address)
                a2.buddies.add(a1.address)
        elif l1 == 0 and l2 > 0:
            if lc < grid.maxl:
                self._specialize(shorter=a1, longer=a2, lc=lc)
        elif l1 > 0 and l2 == 0:
            if lc < grid.maxl:
                self._specialize(shorter=a2, longer=a1, lc=lc)
        else:
            self._diverged(a1, a2, lc, depth)

    def _exchange_refs(self, a1: KaryPeer, a2: KaryPeer, lc: int) -> None:
        """Union + resample the sibling sets at the deepest shared level.

        The two peers share their first ``lc`` symbols, so every sibling
        set at level ``lc`` is valid for both sides.
        """
        rng = self.grid.rng
        own = a1.path[lc - 1]  # == a2.path[lc - 1] (shared prefix)
        for symbol in self.grid.space.siblings(own):
            combined = [
                address
                for address in (
                    *a1.routing.refs(lc, symbol),
                    *a2.routing.refs(lc, symbol),
                )
                if address not in (a1.address, a2.address)
            ]
            if not combined:
                continue
            a1.routing.merge_refs(lc, symbol, combined, rng)
            a2.routing.merge_refs(lc, symbol, combined, rng)

    def _specialize(self, shorter: KaryPeer, longer: KaryPeer, lc: int) -> None:
        """Cases 2/3: the shorter peer avoids the longer peer's symbol."""
        grid = self.grid
        taken = longer.path[lc]
        chosen = grid.space.random_symbol(grid.rng, excluding=taken)
        shorter.extend_path(chosen)
        shorter.routing.add_ref(lc + 1, taken, longer.address)
        longer.routing.merge_refs(
            lc + 1, chosen, [shorter.address], grid.rng
        )
        self._handover(shorter, longer)

    def _diverged(self, a1: KaryPeer, a2: KaryPeer, lc: int, depth: int) -> None:
        """Case 4 with mutual insertion (see module docstring)."""
        grid = self.grid
        s1 = a1.path[lc]
        s2 = a2.path[lc]
        a1.routing.add_ref(lc + 1, s2, a2.address)
        a2.routing.add_ref(lc + 1, s1, a1.address)
        if depth >= grid.recmax:
            return
        rng = grid.rng
        for target, source_refs in (
            (a2, a1.routing.refs(lc + 1, s2)),
            (a1, a2.routing.refs(lc + 1, s1)),
        ):
            candidates = [
                address
                for address in source_refs
                if address not in (target.address,)
            ]
            if len(candidates) > grid.recursion_fanout:
                candidates = rng.sample(candidates, grid.recursion_fanout)
            for address in candidates:
                if grid.has_peer(address) and grid.is_online(address):
                    self._exchange(target, grid.peer(address), depth + 1)

    def _handover(self, specialized: KaryPeer, partner: KaryPeer) -> None:
        """Move index entries the specializing peer no longer covers."""
        dropped = specialized.store.drop_refs_outside(specialized.path)
        for ref in dropped:
            if KeySpace.in_prefix_relation(ref.key, partner.path):
                partner.store.add_ref(ref)


class KarySearchEngine:
    """The generalized Fig. 2 search."""

    def __init__(self, grid: KaryGrid, *, max_messages: int = 10_000) -> None:
        if max_messages < 1:
            raise ValueError(f"max_messages must be >= 1, got {max_messages}")
        self.grid = grid
        self.max_messages = max_messages

    def query_from(self, start: Address, query: str) -> KarySearchResult:
        """Issue *query* at peer *start*."""
        self.grid.space.validate(query)
        stats = {"messages": 0, "failed": 0}
        found, responder = self._query(
            self.grid.peer(start), query, 0, stats
        )
        return KarySearchResult(
            query=query,
            start=start,
            found=found,
            responder=responder,
            messages=stats["messages"],
            failed_attempts=stats["failed"],
        )

    def enumerate_prefix(
        self, start: Address, prefix: str, *, fanout: int = 2
    ) -> tuple[list[Address], int]:
        """Collect peers responsible for keys under *prefix* — the trie's
        native prefix query (§6: "directly support trie search structures").

        Routes to the prefix region like :meth:`query_from`, then fans out
        into up to *fanout* references per sibling symbol at every level
        below the match, visiting the leaf regions of the whole subtree.
        Returns ``(responders, messages)``.
        """
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.grid.space.validate(prefix)
        stats = {"messages": 0, "failed": 0}
        responders: list[Address] = []
        seen: set[Address] = set()
        self._enumerate(
            self.grid.peer(start), prefix, 0, fanout, stats, responders, seen
        )
        return responders, stats["messages"]

    def _enumerate(
        self,
        peer: KaryPeer,
        p: str,
        level: int,
        fanout: int,
        stats: dict[str, int],
        responders: list[Address],
        seen: set[Address],
    ) -> None:
        if peer.address in seen:
            return
        seen.add(peer.address)
        rempath = peer.path[level:]
        compath = KeySpace.common_prefix(p, rempath)
        lc = len(compath)
        if lc == len(p) or lc == len(rempath):
            responders.append(peer.address)
            if lc == len(p):
                # The peer's path extends past the prefix: its sibling sets
                # at every deeper level cover the other branches of the
                # prefix's subtree.
                for sublevel in range(level + lc + 1, peer.depth + 1):
                    own = peer.path[sublevel - 1]
                    for symbol in self.grid.space.siblings(own):
                        self._fan(
                            peer, "", sublevel, symbol, fanout,
                            stats, responders, seen,
                        )
            return
        wanted = p[lc]
        self._fan(
            peer, p[lc:], level + lc, wanted, fanout, stats, responders, seen,
            ref_level=level + lc + 1,
        )

    def _fan(
        self,
        peer: KaryPeer,
        querypath: str,
        next_level: int,
        symbol: str,
        fanout: int,
        stats: dict[str, int],
        responders: list[Address],
        seen: set[Address],
        *,
        ref_level: int | None = None,
    ) -> None:
        refs = list(peer.routing.refs(ref_level or next_level, symbol))
        rng = self.grid.rng
        rng.shuffle(refs)
        forwarded = 0
        for address in refs:
            if forwarded >= fanout:
                break
            if address in seen:
                continue
            if not self.grid.has_peer(address) or not self.grid.is_online(address):
                stats["failed"] += 1
                continue
            stats["messages"] += 1
            forwarded += 1
            self._enumerate(
                self.grid.peer(address), querypath, next_level,
                fanout, stats, responders, seen,
            )

    def _query(
        self, peer: KaryPeer, p: str, level: int, stats: dict[str, int]
    ) -> tuple[bool, Address | None]:
        rempath = peer.path[level:]
        compath = KeySpace.common_prefix(p, rempath)
        lc = len(compath)
        if lc == len(p) or lc == len(rempath):
            return True, peer.address
        wanted = p[lc]
        querypath = p[lc:]
        refs = list(peer.routing.refs(level + lc + 1, wanted))
        rng = self.grid.rng
        while refs:
            address = refs.pop(rng.randrange(len(refs)))
            if not self.grid.has_peer(address) or not self.grid.is_online(address):
                stats["failed"] += 1
                continue
            if stats["messages"] >= self.max_messages:
                return False, None
            stats["messages"] += 1
            found, responder = self._query(
                self.grid.peer(address), querypath, level + lc, stats
            )
            if found:
                return True, responder
        return False, None


def build_kary_grid(
    grid: KaryGrid,
    *,
    threshold_fraction: float = 0.95,
    max_meetings: int | None = None,
) -> KaryBuildReport:
    """Run random meetings until the average depth reaches the threshold.

    Larger alphabets converge slower per meeting (each meeting covers one
    of ``k`` sibling relations), so the default budget scales with both
    the population and the arity.
    """
    if not 0.0 < threshold_fraction <= 1.0:
        raise ValueError(
            f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
        )
    if len(grid) < 2:
        raise ValueError("construction needs at least two peers")
    if max_meetings is None:
        max_meetings = 200 * len(grid) * grid.space.arity
    engine = KaryExchangeEngine(grid)
    addresses = grid.addresses()
    threshold = threshold_fraction * grid.maxl
    meetings = 0
    check_every = max(1, len(grid) // 4)  # avoid an O(N) scan per meeting
    average_depth = grid.average_path_length()
    while average_depth < threshold and meetings < max_meetings:
        first, second = grid.rng.sample(addresses, 2)
        engine.meet(first, second)
        meetings += 1
        if meetings % check_every == 0:
            average_depth = grid.average_path_length()
    average_depth = grid.average_path_length()
    return KaryBuildReport(
        converged=average_depth >= threshold,
        exchanges=engine.calls,
        meetings=engine.meetings,
        average_depth=average_depth,
    )
