"""Bit-identical buffered access to a ``random.Random`` word stream.

Every random decision the construction protocol makes — meeting pairs,
``merge_refs`` re-sampling, case-4 fanout — bottoms out in CPython's
``Random.getrandbits(k)`` with ``k <= 32``, i.e. exactly one tempered
32-bit Mersenne-Twister word per draw (``genrand_uint32() >> (32 - k)``).
numpy's :class:`numpy.random.MT19937` implements the same generator and
its state dict is interconvertible with ``Random.getstate()``, so we can

1. transplant the ``random.Random`` state into a numpy bit generator,
2. bulk-generate blocks of raw words with ``random_raw`` (~5x cheaper
   per word than ``Random.getrandbits``),
3. serve ``getrandbits`` / ``_randbelow`` / ``sample`` from that buffer
   with the exact draw discipline of CPython's :mod:`random`, and
4. write the advanced state back via ``setstate`` when the caller needs
   the plain ``random.Random`` again (:meth:`BufferedReader.sync`).

The portable baseline (:class:`DirectReader`) serves the same interface
straight off the wrapped ``Random`` — slower, trivially bit-identical,
and used automatically when numpy is unavailable.  Both readers replicate
``random.sample``'s selection-set/pool heuristic verbatim, so the word
consumption matches CPython draw for draw.
"""

from __future__ import annotations

import random
from math import ceil as _ceil
from math import log as _log

try:  # optional acceleration; the container may not ship numpy
    import numpy as _np
    from numpy.random import MT19937 as _MT19937
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None
    _MT19937 = None

__all__ = ["HAVE_NUMPY", "BufferedReader", "DirectReader", "reader_for"]

HAVE_NUMPY = _np is not None

#: Words generated per ``random_raw`` call.  Large enough to amortize the
#: numpy call + ``tolist`` boxing, small enough to keep the buffer cheap.
DEFAULT_BLOCK = 8192

#: Memoized CPython-sample ``setsize`` per k — construction hammers two k
#: values (refmax and fanout), so the ``4 ** ceil(log(3k, 4))`` transcend
#: is worth caching.
_SETSIZE: dict[int, int] = {}


def _setsize(k: int) -> int:
    size = _SETSIZE.get(k)
    if size is None:
        size = 21  # size of a small set minus size of an empty list
        if k > 5:
            size += 4 ** _ceil(_log(k * 3, 4))  # table size for big sets
        _SETSIZE[k] = size
    return size


def _sample(reader, population, k):
    """CPython 3.x ``random.sample`` over *reader*'s ``randbelow``.

    Replicated (not re-derived) from :meth:`random.Random.sample` so the
    pool-vs-selection-set switch — and therefore the number of MT words
    consumed — is identical to the object core's ``rng.sample`` calls.
    """
    n = len(population)
    if not 0 <= k <= n:
        raise ValueError("sample larger than population or is negative")
    randbelow = reader.randbelow
    result = [None] * k
    if n <= _setsize(k):
        # An n-length list is smaller than a k-length set.
        pool = list(population)
        for i in range(k):
            j = randbelow(n - i)
            result[i] = pool[j]
            pool[j] = pool[n - i - 1]  # move non-selected item into vacancy
    else:
        selected: set[int] = set()
        selected_add = selected.add
        for i in range(k):
            j = randbelow(n)
            while j in selected:
                j = randbelow(n)
            selected_add(j)
            result[i] = population[j]
    return result


class DirectReader:
    """Serve draws straight off a ``random.Random`` (portable baseline).

    Bit-identical by construction: every draw *is* the wrapped Random's
    ``getrandbits``, so the generator state never leaves the object and
    :meth:`sync` is a no-op.
    """

    __slots__ = ("rng", "getrandbits")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.getrandbits = rng.getrandbits

    def randbelow(self, n: int) -> int:
        """``Random._randbelow_with_getrandbits`` for ``n > 0``."""
        getrandbits = self.getrandbits
        k = n.bit_length()
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        return r

    def sample(self, population, k):
        """Draw-identical twin of ``self.rng.sample(population, k)``."""
        return _sample(self, population, k)

    def pair_below(self, n: int) -> tuple[int, int]:
        """Two distinct indices, draw-identical to ``sample(range(n), 2)``.

        Only valid for ``n > 21`` (the selection-set branch of CPython's
        sample); callers fall back to :meth:`sample` below that.
        """
        getrandbits = self.getrandbits
        k = n.bit_length()
        first = getrandbits(k)
        while first >= n:
            first = getrandbits(k)
        second = getrandbits(k)
        while second >= n or second == first:
            second = getrandbits(k)
        return first, second

    def sync(self) -> None:
        """No-op: the wrapped Random is always current."""


class BufferedReader:
    """Block-buffered MT19937 words, state-synced with a ``random.Random``.

    The wrapped Random's Mersenne-Twister state is transplanted into a
    :class:`numpy.random.MT19937`; raw 32-bit words are generated in
    blocks and served as ``getrandbits``/``randbelow`` results.  Between
    :meth:`sync` calls the wrapped ``random.Random`` is *stale* — callers
    must not draw from it directly until ``sync()`` writes the advanced
    state back.
    """

    __slots__ = ("rng", "_gauss", "_bg", "_block", "_buf", "_pos", "_block_state")

    def __init__(self, rng: random.Random, block: int = DEFAULT_BLOCK) -> None:
        if _MT19937 is None:  # pragma: no cover - guarded by reader_for
            raise RuntimeError("numpy is required for BufferedReader")
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        version, internal, gauss = rng.getstate()
        if version != 3:  # pragma: no cover - CPython has used 3 since 2.3
            raise RuntimeError(f"unsupported Random state version {version}")
        self.rng = rng
        self._gauss = gauss
        bg = _MT19937()
        bg.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": _np.array(internal[:-1], dtype=_np.uint32),
                "pos": internal[-1],
            },
        }
        self._bg = bg
        self._block = block
        self._buf: list[int] = []
        self._pos = 0
        # State as of the first unconsumed buffered word; anchor for sync().
        self._block_state = bg.state

    def _refill(self) -> None:
        self._block_state = self._bg.state
        self._buf = self._bg.random_raw(self._block).tolist()
        self._pos = 0

    def getrandbits(self, k: int) -> int:
        """One MT word, truncated to *k* bits (``1 <= k <= 32``)."""
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            self._refill()
            pos = 0
            buf = self._buf
        self._pos = pos + 1
        return buf[pos] >> (32 - k)

    def randbelow(self, n: int) -> int:
        """``Random._randbelow_with_getrandbits`` served from the buffer."""
        shift = 32 - n.bit_length()
        buf = self._buf
        pos = self._pos
        end = len(buf)
        while True:
            if pos >= end:
                self._refill()
                buf = self._buf
                pos = 0
                end = len(buf)
            r = buf[pos] >> shift
            pos += 1
            if r < n:
                self._pos = pos
                return r

    def sample(self, population, k):
        """Draw-identical twin of ``self.rng.sample(population, k)``.

        The rejection loops are inlined over the word buffer — sampling
        dominates construction (≈33 draws per exchange at ``refmax=20``),
        so per-draw function calls are the difference between ~1.2x and
        ~4x over the object core.
        """
        n = len(population)
        if not 0 <= k <= n:
            raise ValueError("sample larger than population or is negative")
        result = [None] * k
        buf = self._buf
        pos = self._pos
        end = len(buf)
        if n <= _setsize(k):
            # Pool path: partial Fisher-Yates with shrinking bounds.  The
            # shift tracks the bound's bit length incrementally — it only
            # changes when the bound drops below a power of two.
            pool = list(population)
            shift = 32 - n.bit_length()
            lower = 1 << max(n.bit_length() - 1, 0)
            for i in range(k):
                bound = n - i
                if bound < lower:
                    lower >>= 1
                    shift += 1
                while True:
                    if pos >= end:
                        self._refill()
                        buf = self._buf
                        pos = 0
                        end = len(buf)
                    j = buf[pos] >> shift
                    pos += 1
                    if j < bound:
                        break
                result[i] = pool[j]
                pool[j] = pool[bound - 1]
        else:
            # Selection-set path: re-draw on duplicates.
            selected: set[int] = set()
            selected_add = selected.add
            shift = 32 - n.bit_length()
            for i in range(k):
                while True:
                    if pos >= end:
                        self._refill()
                        buf = self._buf
                        pos = 0
                        end = len(buf)
                    j = buf[pos] >> shift
                    pos += 1
                    if j < n and j not in selected:
                        break
                selected_add(j)
                result[i] = population[j]
        self._pos = pos
        return result

    def pair_below(self, n: int) -> tuple[int, int]:
        """Two distinct indices, draw-identical to ``sample(range(n), 2)``.

        Only valid for ``n > 21`` (the selection-set branch of CPython's
        sample); callers fall back to :meth:`sample` below that.
        """
        shift = 32 - n.bit_length()
        buf = self._buf
        pos = self._pos
        end = len(buf)
        while True:
            if pos >= end:
                self._refill()
                buf = self._buf
                pos = 0
                end = len(buf)
            first = buf[pos] >> shift
            pos += 1
            if first < n:
                break
        while True:
            if pos >= end:
                self._refill()
                buf = self._buf
                pos = 0
                end = len(buf)
            second = buf[pos] >> shift
            pos += 1
            if second < n and second != first:
                break
        self._pos = pos
        return first, second

    def sync(self) -> None:
        """Write the consumed-words-advanced state back into the Random.

        Replays the consumed prefix of the current block on a scratch
        generator anchored at the block start, yielding the exact MT state
        a plain ``random.Random`` would hold after the same draws.  The
        reader stays usable: remaining buffered words are kept and the
        anchor moves forward.
        """
        consumed = self._pos
        scratch = _MT19937()
        scratch.state = self._block_state
        if consumed:
            scratch.random_raw(consumed)
        state = scratch.state["state"]
        key = tuple(int(word) for word in state["key"]) + (int(state["pos"]),)
        self.rng.setstate((3, key, self._gauss))
        self._block_state = scratch.state
        self._buf = self._buf[consumed:]
        self._pos = 0


def reader_for(
    rng: random.Random,
    *,
    accelerate: bool | None = None,
    block: int = DEFAULT_BLOCK,
):
    """The fastest bit-identical reader available for *rng*.

    ``accelerate=None`` auto-detects numpy; ``False`` forces the portable
    :class:`DirectReader` (useful for differential testing).
    """
    if accelerate is None:
        accelerate = HAVE_NUMPY
    if accelerate:
        if not HAVE_NUMPY:
            raise RuntimeError("numpy not available; cannot accelerate RNG reads")
        return BufferedReader(rng, block=block)
    return DirectReader(rng)
