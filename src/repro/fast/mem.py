"""Memory accounting for both grid cores.

The real limiter for 1M-peer simulation is resident memory, not CPU
(ROADMAP item 2), so every bench run reports:

* **peak RSS** of the process (``resource.getrusage``),
* **estimated per-peer bytes** of the grid representation — object core
  (peers + routing lists + path strings + stores) vs. array core (flat
  buffers).  Estimates, not exact accounting: CPython interns small ints
  and shares string storage, so treat them as upper bounds for relative
  comparison.
"""

from __future__ import annotations

import sys
from typing import Any

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = [
    "peak_rss_bytes",
    "object_grid_bytes",
    "grid_memory_report",
    "shared_memory_report",
]

_INT_BOX = 28  # sys.getsizeof of a one-digit int


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, in bytes (None if unknown)."""
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024  # Linux reports kilobytes


def object_grid_bytes(grid: Any) -> int:
    """Estimated resident bytes of an object-core ``PGrid``'s peer state."""
    total = sys.getsizeof(grid._peers)
    for peer in grid._peers.values():
        total += object.__sizeof__(peer)  # slots header
        total += sys.getsizeof(peer.path)
        total += _INT_BOX  # address box
        routing = peer.routing
        total += object.__sizeof__(routing)
        total += sys.getsizeof(routing._levels)
        for slot in routing._levels:
            total += sys.getsizeof(slot) + _INT_BOX * len(slot)
        total += sys.getsizeof(peer.buddies) + _INT_BOX * len(peer.buddies)
        store = peer.store
        total += object.__sizeof__(store)
        total += sys.getsizeof(store._items)
        total += sys.getsizeof(store._index)
        for holders in store._index.values():
            total += sys.getsizeof(holders) + 72 * len(holders)  # DataRef objects
    return total


def shared_memory_report(snapshot: Any = None) -> dict[str, Any] | None:
    """Shared-memory segment accounting: ``{"segments", "bytes_total",
    "details"}`` or ``None`` when nothing is mapped.

    Segment bytes live in ``/dev/shm``-backed pages shared across every
    attached process — they are *not* part of any process's heap, which
    is why :func:`grid_memory_report` reports them separately from the
    per-core heap estimates.  Covers every segment this process maps
    (owner or attached via :func:`repro.fast.snapshot.resolve`), plus
    *snapshot* if given and not already registered.
    """
    try:
        from repro.fast import snapshot as snapmod
    except ImportError:  # pragma: no cover - snapshot module unavailable
        return None
    details = snapmod.attached_segments()
    if snapshot is not None and not snapshot.closed:
        if all(entry["name"] != snapshot.name for entry in details):
            details.append(
                {
                    "name": snapshot.name,
                    "bytes": snapshot.nbytes,
                    "role": "owner" if snapshot.owner else "attached",
                }
            )
    if not details:
        return None
    return {
        "segments": len(details),
        "bytes_total": sum(entry["bytes"] for entry in details),
        "details": details,
    }


def grid_memory_report(
    pgrid: Any = None,
    agrid: Any = None,
    snapshot: Any = None,
) -> dict[str, Any]:
    """Peak RSS plus per-peer byte estimates for whichever cores are given.

    Heap estimates (``object_core`` / ``array_core``) and shared-memory
    segment bytes (``shared_memory``) are reported separately: segments
    are off-heap pages shared across processes, so counting them as heap
    would double-charge every attached worker.
    """
    report: dict[str, Any] = {"peak_rss_bytes": peak_rss_bytes()}
    if pgrid is not None and len(pgrid):
        total = object_grid_bytes(pgrid)
        report["object_core"] = {
            "peers": len(pgrid),
            "bytes_total": total,
            "bytes_per_peer": round(total / len(pgrid), 1),
        }
    if agrid is not None and agrid.n:
        total = agrid.memory_bytes()
        report["array_core"] = {
            "peers": agrid.n,
            "bytes_total": total,
            "bytes_per_peer": round(total / agrid.n, 1),
        }
    shared = shared_memory_report(snapshot)
    if shared is not None:
        report["shared_memory"] = shared
    return report
