"""Construction driver for the array core.

:class:`ArrayGridBuilder` is a control-flow twin of
:class:`repro.sim.builder.GridBuilder`: the same validation, the same
budget-check order, the same incremental average-depth formula (offset +
case counters), the same trajectory sampling points and the same
:class:`~repro.sim.builder.ConstructionReport` — so twin-seeded runs stop
after the identical meeting and report identical numbers.

Meetings run in *batched rounds* only in the RNG sense: pair draws and
exchange draws are served from block-buffered MT19937 words
(:mod:`repro.fast.rngbuf`), while the convergence check stays per-meeting
because the stopping point is part of the bit-identical contract.  The
uniform scheduler is inlined — ``sample(range(n), 2)`` consumes the same
words as ``UniformMeetings``' ``rng.sample(addresses, 2)`` because sample
draws positions, not values.
"""

from __future__ import annotations

from repro.errors import NotConvergedError
from repro.fast.arraygrid import ArrayGrid
from repro.fast.engine import ArrayExchangeEngine
from repro.sim.builder import ConstructionReport, ConstructionSample

__all__ = ["ArrayGridBuilder"]


class ArrayGridBuilder:
    """Runs uniform random meetings on an :class:`ArrayGrid` until convergence."""

    def __init__(
        self,
        grid: ArrayGrid,
        *,
        engine: ArrayExchangeEngine | None = None,
    ) -> None:
        if grid.n < 2:
            raise ValueError("construction needs at least two peers")
        self.grid = grid
        self.engine = engine or ArrayExchangeEngine(grid)
        self._population = range(grid.n)
        self._rebase_depth_offset()

    def _rebase_depth_offset(self) -> None:
        """Anchor the case counters to the current population (fixed here)."""
        counters = self.engine._counters
        self._depth_offset = sum(self.grid.path_len) - (
            2 * counters[2] + counters[3] + counters[4]
        )

    def build(
        self,
        *,
        threshold_fraction: float = 0.99,
        max_meetings: int | None = None,
        max_exchanges: int | None = None,
        sample_every: int | None = None,
        raise_on_budget: bool = False,
    ) -> ConstructionReport:
        """Run meetings until ``avg depth >= threshold_fraction * maxl``.

        Same semantics (and bit-identical stopping point) as
        :meth:`repro.sim.builder.GridBuilder.build`.  On return the grid's
        ``random.Random`` has been synced past all consumed draws.
        """
        if not 0.0 < threshold_fraction <= 1.0:
            raise ValueError(
                f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
            )
        if max_meetings is not None and max_meetings < 0:
            raise ValueError(f"max_meetings must be >= 0, got {max_meetings}")
        if max_exchanges is not None and max_exchanges < 0:
            raise ValueError(f"max_exchanges must be >= 0, got {max_exchanges}")
        if sample_every is not None and sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")

        grid = self.grid
        n = grid.n
        counters = self.engine._counters
        exchange = self.engine._exchange
        reader = self.engine.reader
        if n > 21:
            # Selection-set regime of CPython's sample: the specialized
            # two-draw path consumes the identical words.
            next_pair = reader.pair_below
            pair_arg = n
        else:
            next_pair = reader.sample
            pair_arg = None
        population = self._population
        offset = self._depth_offset
        threshold = threshold_fraction * grid.config.maxl

        trajectory: list[ConstructionSample] = []
        meetings_run = 0
        converged = (
            offset + 2 * counters[2] + counters[3] + counters[4]
        ) / n >= threshold

        while not converged:
            if max_meetings is not None and meetings_run >= max_meetings:
                break
            if max_exchanges is not None and counters[0] >= max_exchanges:
                break
            if pair_arg is not None:
                first, second = next_pair(pair_arg)
            else:
                first, second = next_pair(population, 2)
            counters[1] += 1
            exchange(first, second, 0)
            meetings_run += 1
            current_depth = (
                offset + 2 * counters[2] + counters[3] + counters[4]
            ) / n
            if sample_every is not None and meetings_run % sample_every == 0:
                trajectory.append(
                    ConstructionSample(
                        meetings=meetings_run,
                        exchanges=counters[0],
                        average_depth=current_depth,
                    )
                )
            converged = current_depth >= threshold

        self.engine.sync_rng()
        average_depth = sum(grid.path_len) / n
        if not converged and raise_on_budget:
            raise NotConvergedError(
                f"construction stopped at average depth {average_depth:.3f} "
                f"< threshold {threshold:.3f} after "
                f"{counters[0]} exchanges",
                exchanges=counters[0],
                average_depth=average_depth,
            )
        return ConstructionReport(
            converged=converged,
            exchanges=counters[0],
            meetings=counters[1],
            average_depth=average_depth,
            threshold=threshold,
            exchanges_per_peer=counters[0] / n,
            peer_count=n,
            stats=self.engine.stats.snapshot(),
            trajectory=trajectory,
        )
