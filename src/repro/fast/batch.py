"""Vectorized batched-round construction (the 100k–1M peer engine).

The strict kernel (:mod:`repro.fast.engine`) replays the object core's
RNG stream draw-for-draw, which pins ~33 sequential Mersenne-Twister
draws per exchange inside the Python interpreter — a hard throughput
floor around 3-5x the object core.  :class:`BatchGridBuilder` trades
that bit-level replay for numpy vectorization:

* meetings are drawn and executed in **rounds**; within a round the
  outstanding exchanges form a *wave* (job arrays ``i1, i2, depth``),
* a wave is filtered to pairwise-disjoint peers (first-occurrence
  order, deterministic); conflicting jobs are deferred to the next
  wave — the parallel-rounds semantics a real P2P deployment exhibits,
* per wave, the case analysis, path extensions, reference-slot updates
  and the ``random_select(refmax, union(...))`` re-sampling all run as
  whole-array numpy operations; case-4 recursions become the next wave,
* replica meetings (buddy-set unions) stay in Python — they are
  per-meeting, not per-exchange, and their cost vanishes at scale.

Semantics: every meeting still executes Fig. 3 exactly (same case
rules, same balancing bit choice, same bounded fanout, same uniform
union re-sampling); what changes is the *interleaving* of meetings and
the RNG discipline (a seeded numpy generator instead of CPython's
``random.sample`` word stream).  Runs are deterministic given a seed
and statistically equivalent to the object core — same convergence
e/N within a few percent, same replica-distribution shape — but not
bit-identical.  Use ``engine="array"`` (strict) when bit-equality with
``GridBuilder`` matters; use ``engine="batch"`` for scale.

Restrictions (construction-from-scratch focus): empty data stores, and
the default ablation flags (``split_min_items=None``,
``mutual_refs_in_case4=False``, ``exchange_refs_all_levels=False``).
The strict engine covers the ablation regimes.
"""

from __future__ import annotations

from repro.errors import NotConvergedError
from repro.fast.arraygrid import ArrayGrid
from repro.sim.builder import ConstructionReport, ConstructionSample

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    np = None

__all__ = ["BatchGridBuilder"]

#: Sort-last marker for invalid entries in packed (key | index) rows.
_SENTINEL = (1 << 62) - 1


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "the batched construction engine requires numpy; "
            "use engine='array' (strict) instead"
        )


class BatchGridBuilder:
    """Vectorized batched-round construction over flat numpy state.

    Two operating modes:

    * **grid-backed** — pass an :class:`ArrayGrid`; its state seeds the
      numpy buffers and :meth:`build` flushes the result back, so the
      grid can be bridged to a :class:`~repro.core.grid.PGrid`.
    * **gridless** — pass ``n=...`` (plus ``config=``/``seed=``); state
      lives purely in numpy (int32 reference buffers, int64 packed
      paths), which is what makes 100k–1M peer construction fit in
      memory.  Analytics (:meth:`replication_sizes`,
      :meth:`path_lengths`, :meth:`memory_bytes`) read the numpy state
      directly.
    """

    def __init__(
        self,
        grid: ArrayGrid | None = None,
        *,
        n: int | None = None,
        config=None,
        round_size: int | None = None,
        seed: int | None = None,
    ) -> None:
        _require_numpy()
        if grid is not None:
            if n is not None or config is not None:
                raise ValueError("pass either a grid or (n, config), not both")
            n = grid.n
            config = grid.config
            if grid.store_refs:
                raise ValueError(
                    "batch engine requires empty data stores; use the strict engine"
                )
        else:
            if n is None:
                raise ValueError("gridless construction needs n")
            if config is None:
                from repro.core.config import PGridConfig

                config = PGridConfig()
            if seed is None:
                raise ValueError("gridless construction needs an explicit seed")
        if n < 2:
            raise ValueError("construction needs at least two peers")
        if config.split_min_items is not None:
            raise ValueError("batch engine does not support split_min_items")
        if config.mutual_refs_in_case4:
            raise ValueError("batch engine does not support mutual_refs_in_case4")
        if config.exchange_refs_all_levels:
            raise ValueError("batch engine does not support exchange_refs_all_levels")
        if config.maxl > 58:
            raise ValueError("batch engine packs paths into int64 (maxl <= 58)")
        self.grid = grid
        self.n = n
        self.config = config
        self.maxl = config.maxl
        self.refmax = config.refmax
        # One round of root meetings per convergence check; sized so the
        # numpy per-op overhead amortizes but threshold overshoot stays
        # a small fraction of the run (the adaptive shrink in ``build``
        # caps it near the threshold anyway).
        # The 32k floor on the cap keeps small-grid behaviour unchanged;
        # above ~128k peers rounds scale with n/4 so the per-wave numpy
        # overhead keeps amortizing (1M peers: 250k-meeting rounds).
        self.round_size = (
            round_size
            if round_size is not None
            else max(64, min(4 * n, max(32_768, n // 4)))
        )
        # A wave's take is bounded by disjoint pairs over distinct peers,
        # and duplicate crowding *lowers* the both-first-occurrence odds
        # as the candidate prefix grows past ~n slots — so offering more
        # than n jobs to the conflict filter costs O(worklist) per wave
        # for a smaller take.  Cap the candidate prefix at n (measured
        # optimum at fig4 scale; flat within noise from 0.6n to 1.5n).
        self._wave_cap = max(1024, n)
        if seed is None:
            # Deterministic derivation from the grid's seeded Random —
            # one documented draw, so repeated builds differ like
            # repeated GridBuilder runs would.
            seed = grid.rng.getrandbits(64)
        # PCG64 over MT19937: the builder never replays the object
        # core's word stream (that is the strict engine's job), and the
        # ref re-sampling keys dominate RNG cost at scale — PCG64 roughly
        # halves it.  Determinism-per-seed is unchanged.
        self._rng = np.random.Generator(np.random.PCG64(seed))

        maxl = self.maxl
        refmax = self.refmax
        if grid is not None:
            self._pb = np.asarray(grid.path_bits, dtype=np.int64)
            self._pl = np.asarray(grid.path_len, dtype=np.int64)
            self._td = np.asarray(grid.table_depth, dtype=np.int64)
            self._rl = np.asarray(grid.ref_len, dtype=np.int16)
            refs = np.full((n * maxl, refmax), -1, dtype=np.int32)
            flat = grid.refs
            for row, count in enumerate(grid.ref_len):
                if count:
                    base = row * refmax
                    refs[row, :count] = flat[base : base + count]
            self._refs = refs
            self._buddies = {i: set(b) for i, b in grid.buddies.items()}
        else:
            self._pb = np.zeros(n, dtype=np.int64)
            self._pl = np.zeros(n, dtype=np.int64)
            self._td = np.zeros(n, dtype=np.int64)
            self._rl = np.zeros(n * maxl, dtype=np.int16)
            self._refs = np.full((n * maxl, refmax), -1, dtype=np.int32)
            self._buddies = {}
        # calls, meetings, case1, case2, case3, case4, buddy_links
        self._counters = [0] * 7
        self._total_depth = int(self._pl.sum())
        # Uniform subset selection is done by packing (random key, peer
        # index) into one int64 and np.sort-ing rows — ~an order of
        # magnitude cheaper than argsort over separate key arrays.
        self._vbits = max((n - 1).bit_length(), 1)
        self._vmask = (1 << self._vbits) - 1
        self._key_mod = 1 << min(62 - self._vbits, 31)
        # First-occurrence scatter table for the conflict filter, plus
        # reused index buffers (np.arange per wave is pure overhead).
        self._first_pos = np.empty(n, dtype=np.int64)
        self._idx_buf = np.arange(2 * self._wave_cap, dtype=np.int64)
        self._ar_refmax = np.arange(refmax)
        fanout = config.recursion_fanout
        self._ar_fanout = None if fanout is None else np.arange(fanout)

    # -- wave processing -----------------------------------------------------------

    def _select_disjoint(self, i1, i2):
        """Deterministic maximal-prefix conflict filter.

        A job enters the wave iff both its peers are first occurrences
        in the interleaved (i1, i2) order; the rest are deferred.
        """
        m = len(i1)
        inter = np.empty(2 * m, dtype=np.int64)
        inter[0::2] = i1
        inter[1::2] = i2
        if len(self._idx_buf) < 2 * m:
            self._idx_buf = np.arange(2 * m, dtype=np.int64)
        idx = self._idx_buf[: 2 * m]
        # Reversed scatter: duplicate indices keep the last write, so
        # writing back-to-front leaves each peer's *first* position.
        first_pos = self._first_pos
        first_pos[inter[::-1]] = idx[::-1]
        fp = first_pos[inter]
        take = (fp[0::2] == idx[0::2]) & (fp[1::2] == idx[1::2])
        return take

    def _exchange_refs(self, i1, i2, lc):
        """Vectorized union + independent re-sample at the shared level."""
        refs = self._refs
        rl = self._rl
        maxl = self.maxl
        refmax = self.refmax
        rows1 = i1 * maxl + lc - 1
        rows2 = i2 * maxl + lc - 1
        active = (rl[rows1] > 0) | (rl[rows2] > 0)
        if not active.any():
            return
        rows1 = rows1[active]
        rows2 = rows2[active]
        a1 = i1[active]
        a2 = i2[active]
        combined = np.empty((len(rows1), 2 * refmax), dtype=refs.dtype)
        combined[:, :refmax] = refs[rows1]
        combined[:, refmax:] = refs[rows2]
        # Exclude the two meeting peers, then dedupe by sorting each row
        # (slot order does not matter: the union is re-sampled uniformly
        # and future draws are uniform over the slot).
        combined[combined == a1[:, None]] = -1
        combined[combined == a2[:, None]] = -1
        combined.sort(axis=1)
        valid = combined != -1
        valid[:, 1:] &= combined[:, 1:] != combined[:, :-1]
        counts = valid.sum(axis=1)
        touched = counts > 0
        if not touched.any():
            return
        rows1 = rows1[touched]
        rows2 = rows2[touched]
        combined = combined[touched]
        valid = valid[touched]
        counts = counts[touched]
        # Unions that already fit in refmax need no sampling at all:
        # ``random_select(refmax, union)`` degenerates to the identity
        # (slot order never matters — future draws are uniform over the
        # slot), and both peers receive the same set.  One sentinel sort
        # compacts the deduped entries; no RNG keys are drawn.  This is
        # the common case through most of construction and roughly
        # halves the kernel's cost at 100k+ peers.
        small = counts <= refmax
        if small.any():
            sm = np.flatnonzero(small)
            sent = np.iinfo(combined.dtype).max
            pack_s = np.where(valid[sm], combined[sm], sent)
            pack_s.sort(axis=1)
            picked_s = pack_s[:, :refmax]
            picked_s[picked_s == sent] = -1
            kept_s = counts[sm].astype(rl.dtype)
            refs[rows1[sm]] = picked_s
            refs[rows2[sm]] = picked_s
            rl[rows1[sm]] = kept_s
            rl[rows2[sm]] = kept_s
        big = ~small
        if big.any():
            bg = np.flatnonzero(big)
            comb_b = combined[bg]
            valid_b = valid[bg]
            # Independent uniform selections for each of the two peers:
            # pack (random key << vbits) | index per union element, sort
            # the rows, keep the first refmax — random keys in the high
            # bits make one int64 sort both shuffle and select.
            t = len(bg)
            keys = self._rng.integers(
                0, self._key_mod, size=(2, t, 2 * refmax), dtype=np.int64
            )
            pack = np.where(
                valid_b[None], (keys << self._vbits) | comb_b[None], _SENTINEL
            ).reshape(2 * t, 2 * refmax)
            pack.sort(axis=1)
            picked = (pack[:, :refmax] & self._vmask).astype(refs.dtype)
            rows_b = np.concatenate([rows1[bg], rows2[bg]])
            refs[rows_b] = picked
            rl[rows_b] = refmax
        rows = np.concatenate([rows1, rows2])
        level = np.concatenate([lc[active][touched], lc[active][touched]])
        peers = rows // maxl
        np.maximum.at(self._td, peers, level)

    def _merge_single(self, longer, shorter, lc):
        """Vectorized ``merge_refs(lc+1, [shorter])`` on *longer* peers."""
        refs = self._refs
        rl = self._rl
        refmax = self.refmax
        rows = longer * self.maxl + lc
        slot = refs[rows]
        present = (slot == shorter[:, None]).any(axis=1)
        counts = rl[rows]
        # Absent with free capacity: append at the count position.
        append = ~present & (counts < refmax)
        if append.any():
            refs[rows[append], counts[append]] = shorter[append]
            rl[rows[append]] = counts[append] + 1
        # Absent and full: uniform refmax-of-(refmax+1) subsample =
        # drop one uniform victim; victim == the newcomer keeps the
        # slot unchanged.
        full = ~present & (counts >= refmax)
        if full.any():
            victims = self._rng.integers(0, refmax + 1, size=int(full.sum()))
            hit = victims < refmax
            target_rows = rows[full][hit]
            refs[target_rows, victims[hit]] = shorter[full][hit]

    def _wave(self, i1, i2, depth):
        """Process one conflict-free wave; returns the next wave's jobs."""
        maxl = self.maxl
        refmax = self.refmax
        config = self.config
        counters = self._counters
        pb = self._pb
        pl = self._pl
        refs = self._refs
        rl = self._rl

        counters[0] += len(i1)
        b1 = pb[i1]
        l1 = pl[i1]
        b2 = pb[i2]
        l2 = pl[i2]
        m = np.minimum(l1, l2)
        x = (b1 >> (l1 - m)) ^ (b2 >> (l2 - m))
        # frexp's binary exponent IS bit_length (0 for 0), one cheap
        # pass with no zero-guard; exact below 2**53, so guard on maxl.
        if maxl <= 52:
            bits = np.frexp(x)[1].astype(np.int64)
        else:  # pragma: no cover - maxl in (52, 58]
            bits = np.zeros(len(x), dtype=np.int64)
            nz = x > 0
            if nz.any():
                bits[nz] = np.floor(np.log2(x[nz])).astype(np.int64) + 1
        lc = m - bits

        shared = lc > 0
        if shared.any():
            self._exchange_refs(i1[shared], i2[shared], lc[shared])

        rem1 = l1 - lc
        rem2 = l2 - lc
        both_done = (rem1 == 0) & (rem2 == 0)
        splittable = lc < maxl

        case1 = both_done & splittable
        if case1.any():
            a1 = i1[case1]
            a2 = i2[case1]
            level = lc[case1]
            pb[a1] = b1[case1] << 1
            pb[a2] = (b2[case1] << 1) | 1
            pl[a1] += 1
            pl[a2] += 1
            rows1 = a1 * maxl + level
            rows2 = a2 * maxl + level
            refs[rows1] = -1
            refs[rows1, 0] = a2
            refs[rows2] = -1
            refs[rows2, 0] = a1
            rl[rows1] = 1
            rl[rows2] = 1
            np.maximum.at(self._td, a1, level + 1)
            np.maximum.at(self._td, a2, level + 1)
            if self._buddies:
                buddies = self._buddies
                for p in a1.tolist():
                    buddies.pop(p, None)
                for p in a2.tolist():
                    buddies.pop(p, None)
            counters[2] += len(a1)
            self._total_depth += 2 * len(a1)

        replicas = both_done & ~splittable
        if replicas.any():
            buddies = self._buddies
            for p1, p2 in zip(i1[replicas].tolist(), i2[replicas].tolist()):
                s1 = buddies.get(p1)
                s2 = buddies.get(p2)
                union = (s1 | s2) if s1 and s2 else set(s1 or s2 or ())
                new1 = union | {p2}
                new1.discard(p1)
                new2 = union | {p1}
                new2.discard(p2)
                buddies[p1] = new1
                buddies[p2] = new2
            counters[6] += int(replicas.sum())

        for case_index, counter_slot in ((2, 3), (3, 4)):
            if case_index == 2:
                mask = (rem1 == 0) & (rem2 > 0) & splittable
                shorter, longer = i1, i2
                sb, lb, ll = b1, b2, l2
            else:
                mask = (rem1 > 0) & (rem2 == 0) & splittable
                shorter, longer = i2, i1
                sb, lb, ll = b2, b1, l1
            if not mask.any():
                continue
            s = shorter[mask]
            g = longer[mask]
            level = lc[mask]
            # The balancing rule: the shorter peer takes the complement
            # of the longer peer's next bit.
            next_bit = (lb[mask] >> (ll[mask] - level - 1)) & 1
            pb[s] = (sb[mask] << 1) | (next_bit ^ 1)
            pl[s] += 1
            rows = s * maxl + level
            refs[rows] = -1
            refs[rows, 0] = g
            rl[rows] = 1
            np.maximum.at(self._td, s, level + 1)
            self._merge_single(g, s, level)
            np.maximum.at(self._td, g, level + 1)
            if self._buddies:
                buddies = self._buddies
                for p in s.tolist():
                    buddies.pop(p, None)
            counters[counter_slot] += len(s)
            self._total_depth += len(s)

        case4 = (rem1 > 0) & (rem2 > 0) & (depth < config.recmax)
        if not case4.any():
            return None
        a1 = i1[case4]
        a2 = i2[case4]
        parent_depth = depth[case4]
        rows1 = a1 * maxl + lc[case4]
        rows2 = a2 * maxl + lc[case4]
        counters[5] += len(a1)
        fanout = config.recursion_fanout
        child_partner = []
        child_target = []
        child_depth = []
        for partner, rows, excl in ((a2, rows1, a2), (a1, rows2, a1)):
            slot = refs[rows]
            valid = slot != -1
            valid &= slot != excl[:, None]
            counts = valid.sum(axis=1)
            if fanout is not None:
                keys = self._rng.integers(
                    0, self._key_mod, size=slot.shape, dtype=np.int64
                )
                pack = np.where(valid, (keys << self._vbits) | slot, _SENTINEL)
                pack.sort(axis=1)
                chosen = pack[:, :fanout] & self._vmask
                limit = np.minimum(counts, fanout)
                cols = self._ar_fanout[None, :] < limit[:, None]
                child_partner.append(np.repeat(partner, fanout)[cols.ravel()])
                child_target.append(chosen[cols])
                child_depth.append(np.repeat(parent_depth, fanout)[cols.ravel()])
            else:
                cols = valid
                child_partner.append(np.repeat(partner, refmax)[cols.ravel()])
                child_target.append(slot[cols])
                child_depth.append(np.repeat(parent_depth, refmax)[cols.ravel()])
        partners = np.concatenate(child_partner)
        targets = np.concatenate(child_target)
        if not len(partners):
            return None
        return partners, targets, np.concatenate(child_depth) + 1

    def _drain(self, i1, i2, depth, min_wave=0):
        """Run a worklist down to (at most) *min_wave* leftover jobs.

        Conflict deferral produces geometrically shrinking tail waves
        where per-op numpy overhead dominates; leftovers below
        ``min_wave`` are returned so the builder can fold them into the
        next round's worklist instead of draining them as tiny waves.
        Conversely, a wave's take is bounded by disjoint pairs over
        distinct peers, so only the first ``_wave_cap`` jobs are offered
        to the conflict filter — scanning the rest would cost O(worklist)
        per wave for no extra parallelism.
        """
        jobs_i1 = i1
        jobs_i2 = i2
        jobs_depth = depth
        cap = self._wave_cap
        while len(jobs_i1) > min_wave:
            head = min(len(jobs_i1), cap)
            h1 = jobs_i1[:head]
            h2 = jobs_i2[:head]
            hd = jobs_depth[:head]
            take = self._select_disjoint(h1, h2)
            if head < len(jobs_i1):
                defer_i1 = np.concatenate([h1[~take], jobs_i1[head:]])
                defer_i2 = np.concatenate([h2[~take], jobs_i2[head:]])
                defer_depth = np.concatenate([hd[~take], jobs_depth[head:]])
            else:
                defer_i1 = h1[~take]
                defer_i2 = h2[~take]
                defer_depth = hd[~take]
            children = self._wave(h1[take], h2[take], hd[take])
            if children is None:
                jobs_i1, jobs_i2, jobs_depth = defer_i1, defer_i2, defer_depth
            else:
                c_i1, c_i2, c_depth = children
                jobs_i1 = np.concatenate([defer_i1, c_i1])
                jobs_i2 = np.concatenate([defer_i2, c_i2])
                jobs_depth = np.concatenate([defer_depth, c_depth])
        return jobs_i1, jobs_i2, jobs_depth

    # -- public API ----------------------------------------------------------------

    def build(
        self,
        *,
        threshold_fraction: float = 0.99,
        max_meetings: int | None = None,
        max_exchanges: int | None = None,
        sample_every: int | None = None,
        raise_on_budget: bool = False,
    ) -> ConstructionReport:
        """Run batched rounds until ``avg depth >= threshold_fraction * maxl``.

        Budgets and the convergence check apply at *round* granularity
        (a round = up to ``round_size`` root meetings plus their
        recursive exchanges), so ``exchanges`` may overshoot
        ``max_exchanges`` by one round's worth.
        """
        if not 0.0 < threshold_fraction <= 1.0:
            raise ValueError(
                f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
            )
        if max_meetings is not None and max_meetings < 0:
            raise ValueError(f"max_meetings must be >= 0, got {max_meetings}")
        if max_exchanges is not None and max_exchanges < 0:
            raise ValueError(f"max_exchanges must be >= 0, got {max_exchanges}")
        if sample_every is not None and sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")

        n = self.n
        counters = self._counters
        threshold = threshold_fraction * self.maxl
        rng = self._rng

        trajectory: list[ConstructionSample] = []
        meetings_run = 0
        last_sampled = 0
        converged = self._total_depth / n >= threshold
        # Jobs deferred past a round boundary (conflict-filter tails).
        pend_i1 = np.empty(0, dtype=np.int64)
        pend_i2 = np.empty(0, dtype=np.int64)
        pend_depth = np.empty(0, dtype=np.int64)
        # Scale the tail cut-off with the round so big-grid rounds don't
        # drain overhead-dominated micro-waves (leftovers fold into the
        # next round's worklist either way).
        min_wave = max(128, self.round_size >> 5)

        while not converged:
            if max_meetings is not None and meetings_run >= max_meetings:
                break
            if max_exchanges is not None and counters[0] >= max_exchanges:
                break
            # Shrink rounds near the threshold so the overshoot stays
            # small; every meeting adds at most 2 path bits.
            remaining_bits = threshold * n - self._total_depth
            round_size = int(
                min(self.round_size, max(256, remaining_bits // 2))
            )
            if max_meetings is not None:
                round_size = min(round_size, max_meetings - meetings_run)
            first = rng.integers(0, n, size=round_size)
            second = rng.integers(0, n, size=round_size)
            clash = first == second
            while clash.any():
                second[clash] = rng.integers(0, n, size=int(clash.sum()))
                clash = first == second
            counters[1] += round_size
            pend_i1, pend_i2, pend_depth = self._drain(
                np.concatenate([pend_i1, first]),
                np.concatenate([pend_i2, second]),
                np.concatenate(
                    [pend_depth, np.zeros(round_size, dtype=np.int64)]
                ),
                min_wave=min_wave,
            )
            meetings_run += round_size
            current_depth = self._total_depth / n
            if (
                sample_every is not None
                and meetings_run // sample_every > last_sampled
            ):
                last_sampled = meetings_run // sample_every
                trajectory.append(
                    ConstructionSample(
                        meetings=meetings_run,
                        exchanges=counters[0],
                        average_depth=current_depth,
                    )
                )
            converged = current_depth >= threshold

        if len(pend_i1):
            # Flush carried jobs so the written-back grid reflects every
            # counted meeting (slight overshoot past the threshold).
            self._drain(pend_i1, pend_i2, pend_depth)
            converged = converged or self._total_depth / n >= threshold
        self._write_back()
        average_depth = self._total_depth / n
        if not converged and raise_on_budget:
            raise NotConvergedError(
                f"construction stopped at average depth {average_depth:.3f} "
                f"< threshold {threshold:.3f} after "
                f"{counters[0]} exchanges",
                exchanges=counters[0],
                average_depth=average_depth,
            )
        return ConstructionReport(
            converged=converged,
            exchanges=counters[0],
            meetings=counters[1],
            average_depth=average_depth,
            threshold=threshold,
            exchanges_per_peer=counters[0] / n,
            peer_count=n,
            stats={
                "calls": counters[0],
                "meetings": counters[1],
                "case1_splits": counters[2],
                "case2_specializations": counters[3],
                "case3_specializations": counters[4],
                "case4_recursions": counters[5],
                "buddy_links": counters[6],
                "ref_handover_entries": 0,
                "ref_handover_lost": 0,
            },
            trajectory=trajectory,
        )

    def _write_back(self) -> None:
        """Flush the numpy state into the owning :class:`ArrayGrid` (if any)."""
        grid = self.grid
        if grid is None:
            return
        refmax = grid.refmax
        grid.path_bits[:] = self._pb.tolist()
        grid.path_len[:] = self._pl.tolist()
        grid.table_depth[:] = self._td.tolist()
        counts = self._rl.tolist()
        grid.ref_len[:] = counts
        flat = grid.refs
        refs = self._refs
        for row, count in enumerate(counts):
            if count:
                base = row * refmax
                flat[base : base + count] = refs[row, :count].tolist()
        grid.buddies.clear()
        grid.buddies.update(
            (i, set(b)) for i, b in self._buddies.items() if b
        )

    # -- query-plane handoff -------------------------------------------------------

    def snapshot_state(self):
        """The flat numpy state ``(path_bits, path_len, refs, ref_len,
        buddies)`` for :class:`repro.fast.query.BatchQueryEngine`.

        Arrays are shared, not copied — take the snapshot after
        :meth:`build` and do not build further while querying.  This is
        the gridless handoff that lets 100k–1M peer grids be queried
        without ever materializing an object grid.
        """
        return self._pb, self._pl, self._refs, self._rl, self._buddies

    # -- gridless analytics --------------------------------------------------------

    def replication_sizes(self):
        """Per-peer replica-group size (peers sharing this peer's full path).

        ``pb * (maxl + 1) + pl`` is injective over (bits, length) pairs
        because ``|pl1 - pl2| <= maxl < maxl + 1``, so one ``np.unique``
        groups peers by exact path without materializing strings.
        """
        packed = self._pb * (self.maxl + 1) + self._pl
        _, inverse, counts = np.unique(
            packed, return_inverse=True, return_counts=True
        )
        return counts[inverse]

    def replication_histogram(self) -> dict[int, int]:
        """``{group_size: number_of_peers_in_groups_of_that_size}``.

        Same per-peer convention as :meth:`ArrayGrid.replication_histogram`
        (and the Fig. 4 bench), but computed from the numpy state so it
        works for gridless 100k+ runs.
        """
        sizes, peers = np.unique(self.replication_sizes(), return_counts=True)
        return {int(s): int(c) for s, c in zip(sizes, peers)}

    def path_length_histogram(self) -> dict[int, int]:
        """``{path_length: peer_count}`` from the numpy state."""
        lengths, peers = np.unique(self._pl, return_counts=True)
        return {int(length): int(c) for length, c in zip(lengths, peers)}

    def memory_bytes(self) -> int:
        """Resident bytes of the numpy construction state."""
        return int(
            self._pb.nbytes
            + self._pl.nbytes
            + self._td.nbytes
            + self._rl.nbytes
            + self._refs.nbytes
            + self._first_pos.nbytes
        )
