"""Flat integer grid state and the object-core bridge.

The whole grid lives in a handful of contiguous Python lists (numpy is
deliberately *not* used for the mutable hot state — boxing every element
access costs more than list indexing for the branchy exchange logic; it
is used for bulk RNG generation and the read-only CSR snapshots):

``path_bits[i]`` / ``path_len[i]``
    Peer *i*'s path as a packed MSB-first integer plus its bit length
    (``path "011"`` → ``bits 0b011, len 3``).
``refs`` / ``ref_len``
    All routing tables in one buffer.  The slot for peer *i*, level
    ``l`` (1-based) starts at ``(i*maxl + l - 1) * refmax`` and holds
    ``ref_len[i*maxl + l - 1]`` peer indices, insertion-ordered exactly
    like :class:`repro.core.routing.RoutingTable` (reference order feeds
    future RNG draws, so it must survive the bridge bit-for-bit).
``table_depth[i]``
    Number of *materialized* levels — distinguishes "level exists but is
    empty" from "level never touched", which ``RoutingTable.to_lists()``
    round-trips observably.
``buddies``
    Sparse ``{peer index: set of peer indices}`` — replica/buddy sets
    only exist once paths complete, so a dense array would waste the
    whole construction phase.  :meth:`ArrayGrid.buddies_csr` exports the
    CSR (offsets + values) form for analytics.
``store_refs`` / ``store_items`` / ``store_counts``
    Sparse leaf-index sidecars keyed by packed ``(bits, length)`` keys.
    Pure construction runs carry no data, so every store operation
    short-circuits on the empty dict.

Addresses: internally everything is a dense index ``0..n-1`` into the
sorted address list; :meth:`from_pgrid` / :meth:`to_pgrid` translate at
the boundary.  RNG draws operate on positions, so the translation cannot
perturb the draw stream.
"""

from __future__ import annotations

import random
import sys
from collections import Counter
from typing import TYPE_CHECKING, Any

from repro.core.config import PGridConfig
from repro.core.grid import AlwaysOnline
from repro.core.routing import RoutingTable
from repro.core.storage import DataItem, DataRef, DataStore

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.grid import PGrid

__all__ = ["ArrayGrid"]

Address = int


def _pack_key(key: str) -> tuple[int, int]:
    """Binary-string key → ``(packed bits, length)``."""
    return (int(key, 2) if key else 0, len(key))


def _unpack_key(bits: int, length: int) -> str:
    """``(packed bits, length)`` → binary-string key."""
    return format(bits, f"0{length}b") if length else ""


class ArrayGrid:
    """The grid as flat integer state (see module docstring for layout)."""

    __slots__ = (
        "config",
        "rng",
        "online_oracle",
        "n",
        "maxl",
        "refmax",
        "addresses",
        "addr_index",
        "path_bits",
        "path_len",
        "refs",
        "ref_len",
        "table_depth",
        "buddies",
        "store_refs",
        "store_items",
        "store_counts",
    )

    def __init__(
        self,
        n: int,
        config: PGridConfig | None = None,
        *,
        rng: random.Random | None = None,
        addresses: list[Address] | None = None,
        online_oracle: Any = None,
    ) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        config = config or PGridConfig()
        if addresses is None:
            addresses = list(range(n))
        elif len(addresses) != n:
            raise ValueError(f"{len(addresses)} addresses for {n} peers")
        self.config = config
        self.rng = rng or random.Random()
        self.online_oracle = online_oracle or AlwaysOnline()
        self.n = n
        self.maxl = config.maxl
        self.refmax = config.refmax
        self.addresses = addresses
        self.addr_index = {address: i for i, address in enumerate(addresses)}
        self.path_bits = [0] * n
        self.path_len = [0] * n
        self.refs = [0] * (n * config.maxl * config.refmax)
        self.ref_len = [0] * (n * config.maxl)
        self.table_depth = [0] * n
        self.buddies: dict[int, set[int]] = {}
        self.store_refs: dict[int, dict[tuple[int, int], dict[Address, tuple[int, bool]]]] = {}
        self.store_items: dict[int, list[DataItem]] = {}
        self.store_counts = [0] * n

    def __len__(self) -> int:
        return self.n

    # -- bridge: object core -> arrays --------------------------------------------

    @classmethod
    def from_pgrid(cls, grid: "PGrid") -> "ArrayGrid":
        """Snapshot *grid* into flat state (shares its config and RNG).

        Raises :class:`ValueError` on dangling routing references or
        buddies — repair membership first; the array core models a fixed
        population.
        """
        addresses = grid.addresses()
        agrid = cls(
            len(addresses),
            grid.config,
            rng=grid.rng,
            addresses=addresses,
            online_oracle=grid.online_oracle,
        )
        index = agrid.addr_index
        maxl = agrid.maxl
        refmax = agrid.refmax
        refs = agrid.refs
        ref_len = agrid.ref_len
        for i, address in enumerate(addresses):
            peer = grid.peer(address)
            path = peer.path
            agrid.path_bits[i] = int(path, 2) if path else 0
            agrid.path_len[i] = len(path)
            levels = peer.routing.to_lists()
            if len(levels) > maxl:
                raise ValueError(
                    f"peer {address}: routing depth {len(levels)} exceeds maxl={maxl}"
                )
            agrid.table_depth[i] = len(levels)
            for level0, level_refs in enumerate(levels):
                base = (i * maxl + level0) * refmax
                for j, ref_address in enumerate(level_refs):
                    try:
                        refs[base + j] = index[ref_address]
                    except KeyError:
                        raise ValueError(
                            f"peer {address}: dangling routing ref {ref_address} "
                            f"at level {level0 + 1}; repair before array construction"
                        ) from None
                ref_len[i * maxl + level0] = len(level_refs)
            if peer.buddies:
                try:
                    agrid.buddies[i] = {index[b] for b in peer.buddies}
                except KeyError as exc:
                    raise ValueError(
                        f"peer {address}: dangling buddy {exc.args[0]}"
                    ) from None
            entries: dict[tuple[int, int], dict[Address, tuple[int, bool]]] = {}
            count = 0
            for ref in peer.store.iter_refs():
                holders = entries.setdefault(_pack_key(ref.key), {})
                holders[ref.holder] = (ref.version, ref.deleted)
                count += 1
            if entries:
                agrid.store_refs[i] = entries
                agrid.store_counts[i] = count
            items = list(peer.store.iter_items())
            if items:
                agrid.store_items[i] = items
        return agrid

    @classmethod
    def from_buffers(
        cls,
        *,
        n: int,
        config: PGridConfig,
        path_bits,
        path_len,
        refs2d,
        ref_len,
        table_depth,
        addresses: list[Address],
        buddies: dict[int, set[int]],
        store_refs: dict[int, dict[tuple[int, int], dict[Address, tuple[int, bool]]]]
        | None = None,
        rng: random.Random | None = None,
        online_oracle: Any = None,
    ) -> "ArrayGrid":
        """Wrap pre-packed buffers (typically a shared-memory
        :class:`~repro.fast.snapshot.GridSnapshot`) as a query view.

        No copies: ``refs2d`` is the ``(n * maxl, refmax)`` slab with
        ``-1`` padding — its flattened form is layout-identical to the
        list representation because reads never pass ``ref_len``.  The
        numpy buffers may be read-only; treat the resulting grid as
        immutable (run queries and statistics, not exchanges) and note
        that ``store_items`` is empty by construction.
        """
        grid = object.__new__(cls)
        grid.config = config
        grid.rng = rng or random.Random()
        grid.online_oracle = online_oracle or AlwaysOnline()
        grid.n = n
        grid.maxl = config.maxl
        grid.refmax = config.refmax
        grid.addresses = addresses
        grid.addr_index = {address: i for i, address in enumerate(addresses)}
        grid.path_bits = path_bits
        grid.path_len = path_len
        grid.refs = refs2d.reshape(-1)
        grid.ref_len = ref_len
        grid.table_depth = table_depth
        grid.buddies = buddies
        grid.store_refs = store_refs if store_refs is not None else {}
        grid.store_items = {}
        counts = [0] * n
        for peer, entries in grid.store_refs.items():
            counts[peer] = sum(len(holders) for holders in entries.values())
        grid.store_counts = counts
        return grid

    # -- bridge: arrays -> object core --------------------------------------------

    def write_back(self, grid: "PGrid") -> None:
        """Copy the flat state back into *grid*'s peer objects, in place.

        *grid* must hold exactly this grid's peer population.  Paths and
        routing-reference order are restored bit-exactly (reference order
        feeds future ``rng.sample`` draws); store entries are restored
        content-exactly (the object store's internal dict order never
        reaches results or RNG — every query output is sorted).
        """
        if grid.addresses() != self.addresses:
            raise ValueError("peer populations differ; cannot write back")
        addresses = self.addresses
        maxl = self.maxl
        refmax = self.refmax
        refs = self.refs
        ref_len = self.ref_len
        for i, address in enumerate(addresses):
            peer = grid.peer(address)
            peer.set_path(_unpack_key(self.path_bits[i], self.path_len[i]))
            table = RoutingTable(refmax)
            for level0 in range(self.table_depth[i]):
                count = ref_len[i * maxl + level0]
                base = (i * maxl + level0) * refmax
                table.set_refs(
                    level0 + 1,
                    [addresses[j] for j in refs[base : base + count]],
                )
            peer.routing = table
            buddy_set = self.buddies.get(i)
            if buddy_set:
                peer.buddies.update(addresses[j] for j in buddy_set)
            store = DataStore()
            for item in self.store_items.get(i, ()):
                store.store_item(item)
            for (bits, length), holders in self.store_refs.get(i, {}).items():
                key = _unpack_key(bits, length)
                for holder, (version, deleted) in holders.items():
                    store.add_ref(
                        DataRef(key=key, holder=holder, version=version, deleted=deleted)
                    )
            peer.store = store

    def to_pgrid(
        self,
        *,
        rng: random.Random | None = None,
        online_oracle: Any = None,
    ) -> "PGrid":
        """Materialize a fresh object-core :class:`PGrid` from the arrays.

        By default the new grid *shares* this grid's ``random.Random`` (so
        a search on the bridged grid consumes the same stream the object
        core would); pass ``rng`` for an independent twin.
        """
        from repro.core.grid import PGrid

        grid = PGrid(
            self.config,
            rng=rng if rng is not None else self.rng,
            online_oracle=online_oracle or self.online_oracle,
        )
        for address in self.addresses:
            grid.add_peer(address)
        self.write_back(grid)
        return grid

    # -- paths ---------------------------------------------------------------------

    def path_str(self, i: int) -> str:
        """Peer *i*'s path as a binary string."""
        return _unpack_key(self.path_bits[i], self.path_len[i])

    # -- structural statistics (PGrid-equivalent, computed on the arrays) ----------

    def average_path_length(self) -> float:
        """The §5.1 convergence measure over the flat state."""
        if not self.n:
            return 0.0
        return sum(self.path_len) / self.n

    def path_length_histogram(self) -> Counter[int]:
        """Number of peers per path length."""
        return Counter(self.path_len)

    def replica_groups(self) -> dict[str, list[Address]]:
        """Map each held path to the sorted addresses holding it exactly."""
        groups: dict[tuple[int, int], list[Address]] = {}
        addresses = self.addresses
        bits = self.path_bits
        lens = self.path_len
        for i in range(self.n):
            groups.setdefault((bits[i], lens[i]), []).append(addresses[i])
        return {_unpack_key(b, ln): addrs for (b, ln), addrs in groups.items()}

    def replication_histogram(self) -> Counter[int]:
        """Fig. 4's distribution, identical to ``PGrid.replication_histogram``."""
        sizes: Counter[tuple[int, int]] = Counter(zip(self.path_bits, self.path_len))
        return Counter(sizes[key] for key in zip(self.path_bits, self.path_len))

    def average_replication(self) -> float:
        """Mean replication factor over peers."""
        if not self.n:
            return 0.0
        histogram = self.replication_histogram()
        return sum(factor * count for factor, count in histogram.items()) / self.n

    def total_routing_refs(self) -> int:
        """Sum of routing references over all peers."""
        return sum(self.ref_len)

    # -- CSR snapshots ---------------------------------------------------------------

    def routing_csr(self):
        """Routing tables as CSR ``(offsets, values)`` over peer-level rows.

        Row ``i*maxl + l - 1`` holds peer *i*'s level-``l`` references.
        numpy arrays when available, plain lists otherwise.
        """
        offsets = [0] * (len(self.ref_len) + 1)
        total = 0
        for row, count in enumerate(self.ref_len):
            total += count
            offsets[row + 1] = total
        values = [0] * total
        refmax = self.refmax
        out = 0
        for row, count in enumerate(self.ref_len):
            base = row * refmax
            values[out : out + count] = self.refs[base : base + count]
            out += count
        if _np is not None:
            return _np.asarray(offsets, dtype=_np.int64), _np.asarray(
                values, dtype=_np.int64
            )
        return offsets, values

    def buddies_csr(self):
        """Buddy sets as CSR ``(offsets, values)`` with sorted rows."""
        offsets = [0] * (self.n + 1)
        values: list[int] = []
        for i in range(self.n):
            row = self.buddies.get(i)
            if row:
                values.extend(sorted(row))
            offsets[i + 1] = len(values)
        if _np is not None:
            return _np.asarray(offsets, dtype=_np.int64), _np.asarray(
                values, dtype=_np.int64
            )
        return offsets, values

    # -- memory accounting -----------------------------------------------------------

    def memory_bytes(self) -> int:
        """Estimated resident bytes of the flat state (containers + boxes).

        Python lists store pointers to boxed ints; the estimate charges
        each occupied slot one box.  Upper bound — CPython interns small
        ints and shares repeated references.
        """
        total = (
            sys.getsizeof(self.path_bits)
            + sys.getsizeof(self.path_len)
            + sys.getsizeof(self.refs)
            + sys.getsizeof(self.ref_len)
            + sys.getsizeof(self.table_depth)
            + sys.getsizeof(self.addresses)
            + sys.getsizeof(self.addr_index)
        )
        box = 28  # sys.getsizeof(int) for one-digit ints
        occupied = self.n * 4 + sum(self.ref_len) + len(self.addr_index)
        total += box * occupied
        for row in self.buddies.values():
            total += sys.getsizeof(row) + box * len(row)
        total += sys.getsizeof(self.buddies)
        return total

    def __repr__(self) -> str:
        return (
            f"ArrayGrid(N={self.n}, avg_depth={self.average_path_length():.2f}, "
            f"config={self.config})"
        )
