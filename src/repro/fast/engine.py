"""The Fig. 3 exchange kernel compiled over flat arrays.

Semantically a line-by-line twin of
:func:`repro.protocol.exchange.exchange_step` (and its driver
:class:`repro.core.exchange.ExchangeEngine`), restated as direct integer
operations:

* common prefix via packed-int XOR + ``bit_length`` instead of string
  scanning,
* routing slots as in-place flat-buffer writes instead of list-copying
  ``RoutingTable`` calls,
* stats as a plain counter list instead of dataclass attribute bumps,
* recursion as a direct self-call instead of the generator/trampoline
  machinery,
* RNG via :mod:`repro.fast.rngbuf`, which consumes the *exact* MT word
  sequence ``random.Random`` would.

Every RNG call site (``merge_refs`` re-sampling, case-4 fanout) fires
under the same conditions and in the same order as the object core, so
twin-seeded runs produce identical grids, counters and generator states
(``tests/fast/test_equivalence.py`` enforces this).

The closure style is deliberate: the kernel binds the grid's arrays and
the config into local cell variables once, so the per-exchange cost is
pure indexing with no attribute loads.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import PGridConfig
from repro.core.exchange import ExchangeStats
from repro.core.grid import AlwaysOnline
from repro.fast.arraygrid import ArrayGrid
from repro.fast.rngbuf import reader_for

__all__ = ["ArrayExchangeEngine"]

# Counter slots (flushed into ExchangeStats by the ``stats`` property).
_CALLS = 0
_MEETINGS = 1
_CASE1 = 2
_CASE2 = 3
_CASE3 = 4
_CASE4 = 5
_BUDDY = 6
_HANDOVER = 7
_LOST = 8


class ArrayExchangeEngine:
    """Executes the Fig. 3 protocol on an :class:`ArrayGrid`.

    Bit-identical to ``ExchangeEngine`` on the same population and seed.
    Probes are not supported — observed runs belong to the object core;
    the array core is the unobserved hot path.
    """

    def __init__(
        self,
        grid: ArrayGrid,
        *,
        config: PGridConfig | None = None,
        accelerate: bool | None = None,
        rng_block: int | None = None,
    ) -> None:
        self.grid = grid
        self.config = config or grid.config
        self._counters = [0] * 9
        kwargs = {} if rng_block is None else {"block": rng_block}
        self.reader = reader_for(grid.rng, accelerate=accelerate, **kwargs)
        self._exchange = self._compile()

    # -- public entry points -------------------------------------------------------

    def meet(self, i1: int, i2: int) -> int:
        """One meeting between peer indices *i1* and *i2*.

        Returns the number of ``exchange`` calls triggered (1 plus any
        case-4 recursion), like ``ExchangeEngine.meet``.
        """
        if i1 == i2:
            raise ValueError("a peer cannot meet itself")
        counters = self._counters
        before = counters[_CALLS]
        counters[_MEETINGS] += 1
        self._exchange(i1, i2, 0)
        return counters[_CALLS] - before

    def run_batch(self, pairs) -> int:
        """Execute a batch of meetings back-to-back; returns exchange calls.

        The batched-round entry point: pair draws and convergence checks
        happen outside, the kernel runs without leaving the loop.
        """
        counters = self._counters
        exchange = self._exchange
        before = counters[_CALLS]
        for i1, i2 in pairs:
            if i1 == i2:
                raise ValueError("a peer cannot meet itself")
            counters[_MEETINGS] += 1
            exchange(i1, i2, 0)
        return counters[_CALLS] - before

    def sync_rng(self) -> None:
        """Write the advanced MT state back into ``grid.rng``."""
        self.reader.sync()

    @property
    def stats(self) -> ExchangeStats:
        """Counters as an :class:`ExchangeStats` (fresh snapshot object)."""
        c = self._counters
        return ExchangeStats(
            calls=c[_CALLS],
            meetings=c[_MEETINGS],
            case1_splits=c[_CASE1],
            case2_specializations=c[_CASE2],
            case3_specializations=c[_CASE3],
            case4_recursions=c[_CASE4],
            buddy_links=c[_BUDDY],
            ref_handover_entries=c[_HANDOVER],
            ref_handover_lost=c[_LOST],
        )

    # -- kernel compilation --------------------------------------------------------

    def _compile(self) -> Callable[[int, int, int], None]:
        grid = self.grid
        config = self.config
        pb = grid.path_bits
        pl = grid.path_len
        refs = grid.refs
        rl = grid.ref_len
        td = grid.table_depth
        buddies = grid.buddies
        store_refs = grid.store_refs
        sc = grid.store_counts
        ml = config.maxl
        rm = config.refmax
        recmax = config.recmax
        fanout = config.recursion_fanout
        mutual = config.mutual_refs_in_case4
        all_levels = config.exchange_refs_all_levels
        smin = config.split_min_items
        counters = self._counters
        sample = self.reader.sample
        oracle = grid.online_oracle
        if isinstance(oracle, AlwaysOnline):
            online = None
        else:
            addresses = grid.addresses
            is_online = oracle.is_online
            online = lambda i: is_online(addresses[i])  # noqa: E731

        def merge_single(o: int, cand: int) -> None:
            # RoutingTable.merge_refs(level, [cand]): union keeps slot
            # order, appends the new candidate, re-samples past refmax.
            count = rl[o]
            base = o * rm
            slot = refs[base : base + count]
            if cand in slot:
                return
            if count < rm:
                refs[base + count] = cand
                rl[o] = count + 1
            else:
                slot.append(cand)
                union = sample(slot, rm)
                refs[base : base + rm] = union

        def handover(src: int, dst: int) -> None:
            # handover_refs(specialized=src, partner=dst): drop entries
            # outside src's (new) path, forward the covered ones to dst.
            entries = store_refs.get(src)
            if not entries:
                return
            src_bits = pb[src]
            src_len = pl[src]
            dropped = []
            width = 0
            for key in list(entries):
                kb, kl = key
                if kl <= src_len:
                    inside = (src_bits >> (src_len - kl)) == kb
                else:
                    inside = (kb >> (kl - src_len)) == src_bits
                if not inside:
                    dropped.append((kb, kl, entries.pop(key)))
                    if kl > width:
                        width = kl
            if not dropped:
                return
            if not entries:
                del store_refs[src]
            flat = []
            for kb, kl, holders in dropped:
                sc[src] -= len(holders)
                for holder, vd in holders.items():
                    # (padded value, length, holder) sorts like the
                    # object core's (key string, holder) sort.
                    flat.append((kb << (width - kl), kl, holder, kb, vd))
            flat.sort()
            dst_bits = pb[dst]
            dst_len = pl[dst]
            dst_entries = None
            for _pad, kl, holder, kb, vd in flat:
                if kl <= dst_len:
                    covered = (dst_bits >> (dst_len - kl)) == kb
                else:
                    covered = (kb >> (kl - dst_len)) == dst_bits
                if covered:
                    if dst_entries is None:
                        dst_entries = store_refs.setdefault(dst, {})
                    holders = dst_entries.setdefault((kb, kl), {})
                    existing = holders.get(holder)
                    if existing is None:
                        holders[holder] = vd
                        sc[dst] += 1
                    elif vd[0] > existing[0]:
                        holders[holder] = vd
                    counters[_HANDOVER] += 1
                else:
                    counters[_LOST] += 1

        def merge_store(src: int, dst: int) -> None:
            # One direction of record_replicas' anti-entropy:
            # dst.store.add_ref(ref) for every ref of src.
            src_entries = store_refs.get(src)
            if not src_entries:
                return
            dst_entries = store_refs.setdefault(dst, {})
            added = 0
            for key, holders in src_entries.items():
                target = dst_entries.setdefault(key, {})
                for holder, vd in holders.items():
                    existing = target.get(holder)
                    if existing is None:
                        target[holder] = vd
                        added += 1
                    elif vd[0] > existing[0]:
                        target[holder] = vd
            sc[dst] += added

        def exchange(i1: int, i2: int, depth: int) -> None:
            counters[_CALLS] += 1
            b1 = pb[i1]
            l1 = pl[i1]
            b2 = pb[i2]
            l2 = pl[i2]
            m = l1 if l1 <= l2 else l2
            if m:
                x = (b1 >> (l1 - m)) ^ (b2 >> (l2 - m))
                lc = m - x.bit_length()
            else:
                lc = 0

            if lc:
                # exchange_refs_default: union + re-sample at the shared
                # level(s); only levels where candidates exist are touched.
                for level in range(1, lc + 1) if all_levels else (lc,):
                    o1 = i1 * ml + level - 1
                    o2 = i2 * ml + level - 1
                    n1 = rl[o1]
                    n2 = rl[o2]
                    if n1 or n2:
                        base1 = o1 * rm
                        base2 = o2 * rm
                        slot1 = refs[base1 : base1 + n1]
                        slot2 = refs[base2 : base2 + n2]
                        combined = [a for a in slot1 if a != i1 and a != i2]
                        combined += [a for a in slot2 if a != i1 and a != i2]
                        if combined:
                            union = list(dict.fromkeys(slot1 + combined))
                            if len(union) > rm:
                                union = sample(union, rm)
                            u = len(union)
                            refs[base1 : base1 + u] = union
                            rl[o1] = u
                            if td[i1] < level:
                                td[i1] = level
                            union = list(dict.fromkeys(slot2 + combined))
                            if len(union) > rm:
                                union = sample(union, rm)
                            u = len(union)
                            refs[base2 : base2 + u] = union
                            rl[o2] = u
                            if td[i2] < level:
                                td[i2] = level

            rem1 = l1 - lc
            rem2 = l2 - lc

            if rem1 == 0 and rem2 == 0:
                if lc < ml and (
                    smin is None or (sc[i1] >= smin and sc[i2] >= smin)
                ):
                    # case 1: introduce a new level; i1 takes '0', i2 '1'.
                    pb[i1] = b1 << 1
                    pl[i1] = l1 + 1
                    buddies.pop(i1, None)
                    pb[i2] = (b2 << 1) | 1
                    pl[i2] = l2 + 1
                    buddies.pop(i2, None)
                    o1 = i1 * ml + lc
                    refs[o1 * rm] = i2
                    rl[o1] = 1
                    if td[i1] <= lc:
                        td[i1] = lc + 1
                    o2 = i2 * ml + lc
                    refs[o2 * rm] = i1
                    rl[o2] = 1
                    if td[i2] <= lc:
                        td[i2] = lc + 1
                    if store_refs:
                        handover(i1, i2)
                        handover(i2, i1)
                    counters[_CASE1] += 1
                else:
                    # replicas: buddy links + index anti-entropy.
                    s1 = buddies.get(i1)
                    s2 = buddies.get(i2)
                    if s1:
                        union = s1 | s2 if s2 else set(s1)
                    else:
                        union = set(s2) if s2 else set()
                    new1 = union | {i2}
                    new1.discard(i1)
                    new2 = union | {i1}
                    new2.discard(i2)
                    buddies[i1] = new1
                    buddies[i2] = new2
                    counters[_BUDDY] += 1
                    if store_refs:
                        merge_store(i1, i2)
                        merge_store(i2, i1)
            elif rem1 == 0:
                if lc < ml and (smin is None or sc[i1] >= smin):
                    # case 2: i1 specializes opposite i2's next bit.
                    bit = (b2 >> (l2 - lc - 1)) & 1
                    pb[i1] = (b1 << 1) | (bit ^ 1)
                    pl[i1] = l1 + 1
                    buddies.pop(i1, None)
                    o1 = i1 * ml + lc
                    refs[o1 * rm] = i2
                    rl[o1] = 1
                    if td[i1] <= lc:
                        td[i1] = lc + 1
                    merge_single(i2 * ml + lc, i1)
                    if td[i2] <= lc:
                        td[i2] = lc + 1
                    if store_refs:
                        handover(i1, i2)
                    counters[_CASE2] += 1
            elif rem2 == 0:
                if lc < ml and (smin is None or sc[i2] >= smin):
                    # case 3: i2 specializes opposite i1's next bit.
                    bit = (b1 >> (l1 - lc - 1)) & 1
                    pb[i2] = (b2 << 1) | (bit ^ 1)
                    pl[i2] = l2 + 1
                    buddies.pop(i2, None)
                    o2 = i2 * ml + lc
                    refs[o2 * rm] = i1
                    rl[o2] = 1
                    if td[i2] <= lc:
                        td[i2] = lc + 1
                    merge_single(i1 * ml + lc, i2)
                    if td[i1] <= lc:
                        td[i1] = lc + 1
                    if store_refs:
                        handover(i2, i1)
                    counters[_CASE3] += 1
            else:
                # case 4: diverged — forward to the refs at the
                # divergence level, bounded by recmax and the fanout.
                if depth < recmax:
                    o1 = i1 * ml + lc
                    o2 = i2 * ml + lc
                    if mutual:
                        # RoutingTable.add_ref materializes the level
                        # even when full or duplicate.
                        if td[i1] <= lc:
                            td[i1] = lc + 1
                        count = rl[o1]
                        base = o1 * rm
                        if count < rm and i2 not in refs[base : base + count]:
                            refs[base + count] = i2
                            rl[o1] = count + 1
                        if td[i2] <= lc:
                            td[i2] = lc + 1
                        count = rl[o2]
                        base = o2 * rm
                        if count < rm and i1 not in refs[base : base + count]:
                            refs[base + count] = i1
                            rl[o2] = count + 1
                    count = rl[o1]
                    base = o1 * rm
                    refs1 = [a for a in refs[base : base + count] if a != i2]
                    count = rl[o2]
                    base = o2 * rm
                    refs2 = [a for a in refs[base : base + count] if a != i1]
                    if fanout is not None:
                        if len(refs1) > fanout:
                            refs1 = sample(refs1, fanout)
                        if len(refs2) > fanout:
                            refs2 = sample(refs2, fanout)
                    counters[_CASE4] += 1
                    deeper = depth + 1
                    if online is None:
                        for a in refs1:
                            exchange(i2, a, deeper)
                        for a in refs2:
                            exchange(i1, a, deeper)
                    else:
                        for a in refs1:
                            if online(a):
                                exchange(i2, a, deeper)
                        for a in refs2:
                            if online(a):
                                exchange(i1, a, deeper)

        return exchange
