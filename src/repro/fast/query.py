"""Vectorized batch query plane over the flat array grid state.

:class:`BatchQueryEngine` resolves *many* searches per numpy pass: the
whole in-flight query population advances one protocol step per wave —
prefix matching via integer path arithmetic, per-wave uniform candidate
draws, Bernoulli liveness — with per-query message/failed-attempt
accounting kept exact.  The same wave kernels back the §3/§5.2 update
and read strategies (repeated DFS, DFS + buddies, breadth-first
fan-out, repetitive/non-repetitive reads), which is what lets Fig. 5
and the §6 trade-off sweep run at 100k+ peers.

Semantics relative to the object core (``SearchEngine`` /
``UpdateEngine`` / ``ReadEngine`` over the Fig. 2 machines):

* **Routing decisions are identical**: divergence level, candidate
  level (``level + lc + 1``), uniform attempt order without
  replacement, candidate consumed *before* the liveness check,
  backtracking order, breadth fan-out capped at ``recbreadth`` with a
  shared per-query visited set.
* **Accounting is identical**: ``messages`` counts successful contacts,
  ``failed_attempts`` counts offline misses; the start peer is visited
  locally (no message, no liveness draw).
* **RNG discipline differs**: a seeded numpy generator drawing per
  wave instead of CPython's ``random`` drawing per hop, so runs are
  deterministic per seed and statistically equivalent to the object
  core — not bit-identical (same contract as
  :class:`repro.fast.batch.BatchGridBuilder`).
* **Budget exhaustion differs in the tail**: the object core keeps
  attempting (and failing to budget) contacts while the recursion
  unwinds, accruing extra ``failed_attempts``; the batch engine marks
  the query exhausted at the first over-budget contact.  The default
  budget is 10 000 messages per query, which no experiment reaches.
* **Breadth visiting order differs**: the object core executes the
  "breadth" fan-out as a synchronous depth-first recursion over one
  shared visited set; the batch engine advances a true frontier wave,
  marking peers visited at forward time.  Reached sets and message
  costs agree statistically (the equivalence tests pin the tolerance).

Observability fidelity note: the batch plane reports **aggregate
counters per wave** via :meth:`repro.obs.Probe.on_batch_wave` and one
batch summary via :meth:`repro.obs.Probe.on_batch_search` — not the
per-hop ``on_forward``/``on_backtrack``/``on_offline_miss`` event
stream.  Per-hop tracing of 10^5+ concurrent queries would serialize
the vectorized kernels back into Python; use the object core when hop
traces matter.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Sequence

from repro.core import keys as keyspace
from repro.core.config import PGridConfig, SearchConfig
from repro.core.storage import DataRef
from repro.protocol.search import key_in_range
from repro.protocol.update import UpdateStrategy

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    np = None

if TYPE_CHECKING:  # pragma: no cover
    from repro.fast.arraygrid import ArrayGrid
    from repro.fast.batch import BatchGridBuilder

__all__ = [
    "BatchQueryEngine",
    "BatchSearchResult",
    "BatchReachResult",
    "BatchReadResult",
    "BatchRangeResult",
]

#: Sort-last marker for invalid entries in packed (key | index) rows.
_SENTINEL = (1 << 62) - 1

# Per-query DFS states.
_ARRIVE, _SELECT = 0, 1
_FOUND, _FAILED, _EXHAUSTED = 2, 3, 4


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "the batch query engine requires numpy; use the object core instead"
        )


def _pack_keys(keys: Sequence[str]):
    """Binary-string keys → (packed bits, lengths) int64 arrays."""
    kb = np.empty(len(keys), dtype=np.int64)
    kl = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(keys):
        if not key:
            raise ValueError("queries must be non-empty binary strings")
        kb[i] = int(key, 2)
        kl[i] = len(key)
    return kb, kl


class BatchSearchResult:
    """Per-query outcome arrays of one :meth:`BatchQueryEngine.search_many`.

    ``responder`` holds dense peer indices (``-1`` where not found); map
    through ``engine.addresses`` when the grid uses sparse addressing.
    """

    __slots__ = ("found", "responder", "messages", "failed_attempts")

    def __init__(self, found, responder, messages, failed_attempts) -> None:
        self.found = found
        self.responder = responder
        self.messages = messages
        self.failed_attempts = failed_attempts

    def __len__(self) -> int:
        return len(self.found)

    @property
    def found_rate(self) -> float:
        return float(self.found.mean()) if len(self.found) else 0.0

    @property
    def mean_messages(self) -> float:
        return float(self.messages.mean()) if len(self.messages) else 0.0

    @property
    def mean_failed(self) -> float:
        return (
            float(self.failed_attempts.mean()) if len(self.failed_attempts) else 0.0
        )


class BatchReachResult:
    """Per-query reached-peer sets (CSR) of one breadth/replica-discovery
    batch: query *i* reached ``values[offsets[i]:offsets[i+1]]``."""

    __slots__ = ("offsets", "values", "messages", "failed_attempts")

    def __init__(self, offsets, values, messages, failed_attempts) -> None:
        self.offsets = offsets
        self.values = values
        self.messages = messages
        self.failed_attempts = failed_attempts

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def reached(self, i: int):
        """Dense peer indices reached by query *i* (discovery order)."""
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    @property
    def mean_messages(self) -> float:
        return float(self.messages.mean()) if len(self.messages) else 0.0


class BatchReadResult:
    """Per-read outcome arrays of :meth:`BatchQueryEngine.read_many`."""

    __slots__ = ("success", "messages", "failed_attempts", "repetitions")

    def __init__(self, success, messages, failed_attempts, repetitions) -> None:
        self.success = success
        self.messages = messages
        self.failed_attempts = failed_attempts
        self.repetitions = repetitions

    def __len__(self) -> int:
        return len(self.success)

    @property
    def success_rate(self) -> float:
        return float(self.success.mean()) if len(self.success) else 0.0

    @property
    def mean_messages(self) -> float:
        return float(self.messages.mean()) if len(self.messages) else 0.0


class BatchRangeResult:
    """Per-query outcome of one :meth:`BatchQueryEngine.search_range_many`.

    Query *i*'s responders (dense indices, first-seen order across its
    cover prefixes) are ``values[offsets[i]:offsets[i+1]]``; its matching
    index entries are ``data_refs[i]`` (deduplicated ``(key, holder)``
    keeping max version, range-filtered, sorted — the object core's
    ``RangeSearchResult.data_refs`` contract); ``covers[i]`` is its
    canonical prefix cover.
    """

    __slots__ = (
        "offsets",
        "values",
        "messages",
        "failed_attempts",
        "covers",
        "data_refs",
    )

    def __init__(
        self, offsets, values, messages, failed_attempts, covers, data_refs
    ) -> None:
        self.offsets = offsets
        self.values = values
        self.messages = messages
        self.failed_attempts = failed_attempts
        self.covers = covers
        self.data_refs = data_refs

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def responders(self, i: int):
        """Dense responder indices of query *i* (first-seen order)."""
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def found(self, i: int) -> bool:
        """Whether query *i* reached at least one responsible peer."""
        return bool(self.offsets[i + 1] > self.offsets[i])

    @property
    def found_rate(self) -> float:
        if len(self) == 0:
            return 0.0
        hits = int(np.count_nonzero(self.offsets[1:] > self.offsets[:-1]))
        return hits / len(self)

    @property
    def mean_messages(self) -> float:
        return float(self.messages.mean()) if len(self.messages) else 0.0


class BatchQueryEngine:
    """Batched DFS/BFS/update/read kernels over flat numpy grid state.

    Construct via :meth:`from_arraygrid` (bridged object grids) or
    :meth:`from_batch_builder` (gridless 100k–1M peer state).  All peer
    identifiers are dense indices ``0..n-1``; ``addresses`` maps them
    back when the source grid used sparse addressing.
    """

    def __init__(
        self,
        *,
        pb,
        pl,
        refs,
        rl,
        n: int,
        config: PGridConfig,
        buddies: dict[int, set[int]] | None = None,
        addresses: list[int] | None = None,
        seed: int,
        p_online: float = 1.0,
        max_messages: int | None = None,
        chunk: int = 8192,
        probe: Any = None,
    ) -> None:
        _require_numpy()
        if not 0.0 <= p_online <= 1.0:
            raise ValueError(f"p_online must be in [0, 1], got {p_online}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if config.maxl > 58:
            raise ValueError("batch query engine packs paths into int64 (maxl <= 58)")
        self.n = n
        self.config = config
        self.maxl = config.maxl
        self.refmax = config.refmax
        self.p_online = p_online
        self.max_messages = (
            max_messages if max_messages is not None else SearchConfig().max_messages
        )
        self.chunk = chunk
        self.addresses = addresses if addresses is not None else list(range(n))
        self._pb = np.ascontiguousarray(pb, dtype=np.int64)
        self._pl = np.ascontiguousarray(pl, dtype=np.int64)
        self._refs = refs  # (n * maxl, refmax) int32, -1 beyond each row's count
        self._rl = rl  # (n * maxl,) per-row counts
        self._buddies = buddies or {}
        self._probe = probe
        self._rng = np.random.Generator(np.random.MT19937(seed))
        self._pyrng = random.Random(seed ^ 0x9E3779B97F4A7C15)
        # Shuffle packing (same scheme as batch.py): random key in the
        # high bits, peer index in the low bits, one int64 sort.
        self._vbits = max((n - 1).bit_length(), 1)
        self._vmask = (1 << self._vbits) - 1
        self._key_mod = 1 << min(62 - self._vbits, 31)
        # Side store for the §5.2 update/read experiments:
        # (peer, key bits, key len, holder) -> version.
        self._store: dict[tuple[int, int, int, int], int] = {}
        #: Optional ArrayShortcutCache consulted by :meth:`search_many`
        #: (attach via :meth:`attach_shortcuts` or assign directly).
        self.shortcuts: Any = None

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_arraygrid(
        cls,
        grid: "ArrayGrid",
        *,
        seed: int | None = None,
        p_online: float | None = None,
        max_messages: int | None = None,
        chunk: int = 8192,
        probe: Any = None,
    ) -> "BatchQueryEngine":
        """Snapshot an :class:`ArrayGrid` (typically bridged from a
        :class:`~repro.core.grid.PGrid`) into the batch query plane.

        ``p_online`` defaults to the grid's online oracle when it is
        AlwaysOnline (1.0) or a plain :class:`~repro.sim.churn.BernoulliChurn`
        (its ``p_online``); other oracles need an explicit value.  When
        ``seed`` is omitted it is derived from the grid's seeded
        ``random.Random`` with one documented draw.
        """
        _require_numpy()
        if p_online is None:
            p_online = _oracle_p_online(grid.online_oracle)
        if seed is None:
            seed = grid.rng.getrandbits(64)
        n = grid.n
        maxl = grid.maxl
        refmax = grid.refmax
        refs = np.full((n * maxl, refmax), -1, dtype=np.int32)
        flat = grid.refs
        for row, count in enumerate(grid.ref_len):
            if count:
                base = row * refmax
                refs[row, :count] = flat[base : base + count]
        rl = np.asarray(grid.ref_len, dtype=np.int16)
        engine = cls(
            pb=grid.path_bits,
            pl=grid.path_len,
            refs=refs,
            rl=rl,
            n=n,
            config=grid.config,
            buddies={i: set(b) for i, b in grid.buddies.items()},
            addresses=list(grid.addresses),
            seed=seed,
            p_online=p_online,
            max_messages=max_messages,
            chunk=chunk,
            probe=probe,
        )
        for peer, entries in grid.store_refs.items():
            for (bits, length), holders in entries.items():
                for holder, (version, deleted) in holders.items():
                    if not deleted:
                        engine._store[(peer, bits, length, holder)] = version
        return engine

    @classmethod
    def from_batch_builder(
        cls,
        builder: "BatchGridBuilder",
        *,
        seed: int,
        p_online: float = 1.0,
        max_messages: int | None = None,
        chunk: int = 8192,
        probe: Any = None,
    ) -> "BatchQueryEngine":
        """Wrap a (converged) gridless builder's numpy state directly —
        no object grid is ever materialized, which is what makes the
        100k+ peer experiment runs fit in memory.  The reference
        buffers are shared, not copied."""
        _require_numpy()
        pb, pl, refs, rl, buddies = builder.snapshot_state()
        return cls(
            pb=pb,
            pl=pl,
            refs=refs,
            rl=rl,
            n=builder.n,
            config=builder.config,
            buddies=buddies,
            seed=seed,
            p_online=p_online,
            max_messages=max_messages,
            chunk=chunk,
            probe=probe,
        )

    # -- shared bit math ----------------------------------------------------------

    def _bit_length(self, x):
        """Vectorized ``int.bit_length`` for non-negative int64 *x*.

        ``frexp`` returns the binary exponent directly (one libm-free
        pass, ~3x cheaper than ``floor(log2)+1`` with a zero-guard) and
        is exact below 2**53; longer paths fall back to log2.
        """
        if self.maxl <= 52:
            return np.frexp(x)[1].astype(np.int64)
        bits = np.zeros(len(x), dtype=np.int64)
        nz = x > 0
        if nz.any():
            bits[nz] = np.floor(np.log2(x[nz])).astype(np.int64) + 1
        return bits

    def _divergence(self, kb, kl, cons, cur):
        """Common-prefix length of the query suffix vs the peer's
        remaining path, plus both suffix lengths (Fig. 2's ``lc``)."""
        pb = self._pb
        pl = self._pl
        one = np.int64(1)
        slen = kl - cons
        sfx = kb & ((one << slen) - 1)
        rlen = np.maximum(pl[cur] - cons, 0)
        rem = pb[cur] & ((one << rlen) - 1)
        m = np.minimum(slen, rlen)
        x = (sfx >> (slen - m)) ^ (rem >> (rlen - m))
        lc = m - self._bit_length(x)
        return lc, slen, rlen

    def _emit_wave(self, kind: str, wave: int, active: int, contacts: int, offline: int) -> None:
        if self._probe is not None:
            self._probe.on_batch_wave(
                kind, wave=wave, active=active, contacts=contacts, offline=offline
            )

    def _emit_batch(self, kind: str, found: int, queries: int, messages: int, failed: int) -> None:
        if self._probe is not None:
            self._probe.on_batch_search(
                kind,
                queries=queries,
                found=found,
                messages=messages,
                failed_attempts=failed,
            )

    # -- depth-first search (Fig. 2) -----------------------------------------------

    def attach_shortcuts(self, capacity: int = 128):
        """Create and attach an :class:`~repro.fast.shortcuts.ArrayShortcutCache`
        consulted by every subsequent :meth:`search_many`; returns it.
        Attach an existing cache by assigning :attr:`shortcuts` (dense
        indices stay stable across engine rebuilds)."""
        from repro.fast.shortcuts import ArrayShortcutCache

        self.shortcuts = ArrayShortcutCache(capacity)
        return self.shortcuts

    def search_many(
        self,
        queries: Sequence[str],
        starts,
        *,
        max_messages: int | None = None,
        shortcuts: Any = None,
    ) -> BatchSearchResult:
        """Resolve one Fig. 2 depth-first search per (query, start) pair.

        ``queries`` are binary strings (or a pre-packed ``(bits, lengths)``
        array pair); ``starts`` dense peer indices.  Queries advance in
        waves of at most ``chunk`` concurrent searches.

        With a shortcut cache (the ``shortcuts`` argument, falling back
        to the attached :attr:`shortcuts`), each query first tries its
        origin's cached responder — object-core semantics
        (:class:`repro.core.shortcuts.ShortcutSearchEngine`): a cached
        peer that is online and still responsible answers for 0 messages
        (itself) or 1; an unusable entry is invalidated and the query
        falls through to the normal DFS; found misses are cached.  The
        liveness of cached responders is drawn from this engine's RNG,
        so cached runs are deterministic per seed but draw a different
        stream than uncached runs (the usual statistical-equivalence
        contract).
        """
        kb, kl = queries if isinstance(queries, tuple) else _pack_keys(queries)
        starts = np.asarray(starts, dtype=np.int64)
        if len(starts) != len(kb):
            raise ValueError(f"{len(kb)} queries but {len(starts)} starts")
        budget = max_messages if max_messages is not None else self.max_messages
        q = len(kb)
        cache = shortcuts if shortcuts is not None else self.shortcuts
        found = np.zeros(q, dtype=bool)
        responder = np.full(q, -1, dtype=np.int64)
        messages = np.zeros(q, dtype=np.int64)
        failed = np.zeros(q, dtype=np.int64)
        if cache is not None and q:
            todo = self._shortcut_pass(
                cache, kb, kl, starts, found, responder, messages
            )
        else:
            todo = np.arange(q, dtype=np.int64)
        for lo in range(0, len(todo), self.chunk):
            sl = todo[lo : lo + self.chunk]
            f, r, m, fa = self._dfs_chunk(kb[sl], kl[sl], starts[sl], budget)
            found[sl] = f
            responder[sl] = r
            messages[sl] = m
            failed[sl] = fa
        if cache is not None and len(todo):
            for i in todo.tolist():
                if found[i]:
                    cache.put(
                        int(starts[i]), int(kb[i]), int(kl[i]), int(responder[i])
                    )
        self._emit_batch(
            "batch_dfs", int(found.sum()), q, int(messages.sum()), int(failed.sum())
        )
        return BatchSearchResult(found, responder, messages, failed)

    def _shortcut_pass(self, cache, kb, kl, starts, found, responder, messages):
        """Resolve cached queries in place; returns indices still to DFS.

        Usability is the object core's check, vectorized: the cached
        responder must be online (one Bernoulli draw) and still in
        prefix relation with the query.  Hits cost 0 messages when the
        responder is the origin itself, else 1; unusable entries are
        invalidated; both outcomes update ``cache.stats``.
        """
        q = len(kb)
        cand = np.full(q, -1, dtype=np.int64)
        for i in range(q):
            hit = cache.get(int(starts[i]), int(kb[i]), int(kl[i]))
            if hit is not None:
                cand[i] = hit
        has = np.flatnonzero(cand >= 0)
        if has.size:
            r = cand[has]
            pb = self._pb
            pl = self._pl
            m = np.minimum(pl[r], kl[has])
            responsible = (pb[r] >> (pl[r] - m)) == (kb[has] >> (kl[has] - m))
            if self.p_online >= 1.0:
                online = np.ones(has.size, dtype=bool)
            else:
                online = self._rng.random(has.size) < self.p_online
            usable = responsible & online
            hits = has[usable]
            found[hits] = True
            responder[hits] = r[usable]
            messages[hits] = (r[usable] != starts[hits]).astype(np.int64)
            for i in has[~usable].tolist():
                cache.invalidate(int(starts[i]), int(kb[i]), int(kl[i]))
            cache.stats.hits += int(usable.sum())
            cache.stats.invalidations += int((~usable).sum())
        todo = np.flatnonzero(~found)
        cache.stats.misses += int(todo.size)
        return todo

    def _dfs_chunk(self, kb, kl, starts, max_messages):
        """One chunk of concurrent depth-first searches, advanced per wave.

        Each query holds an explicit stack of (consumed-bits, remaining
        candidates) frames — depth is bounded by ``maxl`` because every
        successful forward consumes at least one query bit.
        """
        n = self.n
        maxl = self.maxl
        refmax = self.refmax
        refs = self._refs
        rl = self._rl
        rng = self._rng
        p = self.p_online
        q = len(kb)
        depth = maxl + 2

        cur = starts.copy()
        if q and (cur.min() < 0 or cur.max() >= n):
            raise ValueError("start indices out of range")
        consumed = np.zeros(q, dtype=np.int64)
        status = np.full(q, _ARRIVE, dtype=np.int8)
        msgs = np.zeros(q, dtype=np.int64)
        fails = np.zeros(q, dtype=np.int64)
        budget = np.full(q, max_messages, dtype=np.int64)
        responder = np.full(q, -1, dtype=np.int64)
        sp = np.full(q, -1, dtype=np.int64)
        st_cons = np.zeros((q, depth), dtype=np.int64)
        st_cnt = np.zeros((q, depth), dtype=np.int16)
        st_cand = np.full((q, depth, refmax), -1, dtype=np.int32)

        active = np.arange(q, dtype=np.int64)
        wave = 0
        # Every wave each active query pops a frame, consumes a candidate
        # or terminates, so total waves are bounded by total candidate
        # consumptions; the guard only trips on a broken invariant.
        guard = (max_messages + maxl + 2) * (refmax + 2) * 4 + 64
        while active.size:
            if wave > guard:  # pragma: no cover - invariant violation
                raise RuntimeError("batch DFS failed to terminate")
            # Phase 1: arrivals — responsibility check or frame push.
            arr = active[status[active] == _ARRIVE]
            if arr.size:
                c = cur[arr]
                lc, slen, rlen = self._divergence(kb[arr], kl[arr], consumed[arr], c)
                term = (lc == slen) | (lc == rlen)
                hit = arr[term]
                status[hit] = _FOUND
                responder[hit] = c[term]
                div = arr[~term]
                if div.size:
                    nc = consumed[div] + lc[~term]
                    d = sp[div] + 1
                    if d.max() >= depth:  # pragma: no cover - invariant violation
                        raise RuntimeError("batch DFS stack overflow")
                    sp[div] = d
                    st_cons[div, d] = nc
                    row = c[~term] * maxl + nc  # ref level nc+1, 0-based row
                    st_cnt[div, d] = rl[row]
                    st_cand[div, d] = refs[row]
                    status[div] = _SELECT
            # Phase 2: selection — candidate draw + contact, or backtrack.
            sel = active[status[active] == _SELECT]
            contacts = offline = 0
            if sel.size:
                d = sp[sel]
                cnt = st_cnt[sel, d].astype(np.int64)
                empty = cnt <= 0
                pop = sel[empty]
                if pop.size:
                    nd = sp[pop] - 1
                    sp[pop] = nd
                    status[pop[nd < 0]] = _FAILED
                have = sel[~empty]
                if have.size:
                    dh = d[~empty]
                    ch = cnt[~empty]
                    # Uniform draw without replacement: pick a slot, then
                    # swap the last live candidate into its place.
                    j = rng.integers(0, ch)
                    cand = st_cand[have, dh, j].astype(np.int64)
                    st_cand[have, dh, j] = st_cand[have, dh, ch - 1]
                    st_cnt[have, dh] = (ch - 1).astype(np.int16)
                    contacts = int(have.size)
                    if p >= 1.0:
                        on_mask = np.ones(have.size, dtype=bool)
                    else:
                        on_mask = rng.random(have.size) < p
                    off = have[~on_mask]
                    fails[off] += 1
                    offline = int(off.size)
                    on = have[on_mask]
                    if on.size:
                        within = budget[on] > 0
                        status[on[~within]] = _EXHAUSTED
                        fwd = on[within]
                        if fwd.size:
                            budget[fwd] -= 1
                            msgs[fwd] += 1
                            cur[fwd] = cand[on_mask][within]
                            consumed[fwd] = st_cons[fwd, sp[fwd]]
                            status[fwd] = _ARRIVE
            active = active[status[active] < _FOUND]
            self._emit_wave("batch_dfs", wave, int(active.size), contacts, offline)
            wave += 1
        return status == _FOUND, responder, msgs, fails

    # -- breadth-first search (§3 strategy 3) ---------------------------------------

    def breadth_many(
        self,
        queries: Sequence[str],
        starts,
        *,
        recbreadth: int,
        max_messages: int | None = None,
    ) -> BatchReachResult:
        """One §3 breadth-first search per (query, start): fan out to at
        most *recbreadth* online references per level with a shared
        per-query visited set; returns all responsible peers reached."""
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        kb, kl = queries if isinstance(queries, tuple) else _pack_keys(queries)
        starts = np.asarray(starts, dtype=np.int64)
        if len(starts) != len(kb):
            raise ValueError(f"{len(kb)} queries but {len(starts)} starts")
        budget = max_messages if max_messages is not None else self.max_messages
        q = len(kb)
        offsets = np.zeros(q + 1, dtype=np.int64)
        chunks = []
        messages = np.zeros(q, dtype=np.int64)
        failed = np.zeros(q, dtype=np.int64)
        for lo in range(0, q, self.chunk):
            hi = min(lo + self.chunk, q)
            off, vals, m, fa = self._breadth_chunk(
                kb[lo:hi], kl[lo:hi], starts[lo:hi], recbreadth, budget
            )
            counts = off[1:] - off[:-1]
            offsets[lo + 1 : hi + 1] = counts
            chunks.append(vals)
            messages[lo:hi] = m
            failed[lo:hi] = fa
        np.cumsum(offsets, out=offsets)
        values = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        self._emit_batch(
            "batch_breadth",
            int(np.count_nonzero(offsets[1:] > offsets[:-1])),
            q,
            int(messages.sum()),
            int(failed.sum()),
        )
        return BatchReachResult(offsets, values, messages, failed)

    def _breadth_chunk(self, kb, kl, starts, recbreadth, max_messages):
        """One chunk of concurrent breadth-first searches.

        The frontier holds (query, peer, consumed-bits) entries; peers
        are marked visited at forward time (the object core's recursion
        visits a child before the parent tries its next sibling, so
        forward-time marking is the closer batched approximation).
        """
        n = self.n
        maxl = self.maxl
        refmax = self.refmax
        refs = self._refs
        rng = self._rng
        p = self.p_online
        q = len(kb)

        if q and (starts.min() < 0 or starts.max() >= n):
            raise ValueError("start indices out of range")
        msgs = np.zeros(q, dtype=np.int64)
        fails = np.zeros(q, dtype=np.int64)
        budget = np.full(q, max_messages, dtype=np.int64)
        resp_q: list = []
        resp_p: list = []
        # Visited keys (query * n + peer); start peers are pre-visited.
        qidx = np.arange(q, dtype=np.int64)
        seen = set((qidx * n + starts).tolist())

        eq = qidx
        ep = starts.copy()
        ec = np.zeros(q, dtype=np.int64)
        wave = 0
        while eq.size:
            lc, slen, rlen = self._divergence(kb[eq], kl[eq], ec, ep)
            term = (lc == slen) | (lc == rlen)
            if term.any():
                resp_q.append(eq[term])
                resp_p.append(ep[term])
            div = ~term
            contacts = offline = 0
            child_q: list = []
            child_p: list = []
            child_c: list = []
            if div.any():
                deq = eq[div]
                dep = ep[div]
                nc = ec[div] + lc[div]
                row = dep * maxl + nc
                slot = refs[row].astype(np.int64)
                valid = slot != -1
                cnt = valid.sum(axis=1)
                # Shuffle each row's candidates (random key high bits,
                # peer index low bits, one sort — see batch.py).
                keys = rng.integers(
                    0, self._key_mod, size=slot.shape, dtype=np.int64
                )
                pack = np.where(valid, (keys << self._vbits) | slot, _SENTINEL)
                pack.sort(axis=1)
                cand = pack & self._vmask
                fwd = np.zeros(len(deq), dtype=np.int64)
                for col in range(refmax):
                    live = (col < cnt) & (fwd < recbreadth) & (budget[deq] > 0)
                    if not live.any():
                        break
                    rows = np.flatnonzero(live)
                    cc = cand[rows, col]
                    keyv = deq[rows] * n + cc
                    fresh = np.fromiter(
                        (k not in seen for k in keyv.tolist()),
                        dtype=bool,
                        count=len(rows),
                    )
                    rows = rows[fresh]
                    if not rows.size:
                        continue
                    cc = cc[fresh]
                    keyv = keyv[fresh]
                    contacts += int(rows.size)
                    if p >= 1.0:
                        on_mask = np.ones(rows.size, dtype=bool)
                    else:
                        on_mask = rng.random(rows.size) < p
                    off_rows = rows[~on_mask]
                    if off_rows.size:
                        np.add.at(fails, deq[off_rows], 1)
                        offline += int(off_rows.size)
                    on_rows = rows[on_mask]
                    if on_rows.size:
                        tq = deq[on_rows]
                        np.subtract.at(budget, tq, 1)
                        np.add.at(msgs, tq, 1)
                        fwd[on_rows] += 1
                        seen.update(keyv[on_mask].tolist())
                        child_q.append(tq)
                        child_p.append(cc[on_mask])
                        child_c.append(nc[on_rows])
            self._emit_wave(
                "batch_breadth",
                wave,
                sum(len(c) for c in child_q),
                contacts,
                offline,
            )
            wave += 1
            if child_q:
                eq = np.concatenate(child_q)
                ep = np.concatenate(child_p)
                ec = np.concatenate(child_c)
            else:
                break
        if resp_q:
            rq = np.concatenate(resp_q)
            rp = np.concatenate(resp_p)
            order = np.argsort(rq, kind="stable")
            rq = rq[order]
            rp = rp[order]
        else:
            rq = np.empty(0, dtype=np.int64)
            rp = np.empty(0, dtype=np.int64)
        offsets = np.zeros(q + 1, dtype=np.int64)
        np.add.at(offsets, rq + 1, 1)
        np.cumsum(offsets, out=offsets)
        return offsets, rp, msgs, fails

    # -- range queries over the order-preserving key space ---------------------------

    def search_range_many(
        self,
        lows: Sequence[str],
        highs: Sequence[str],
        starts,
        *,
        recbreadth: int = 2,
        max_messages: int | None = None,
        with_refs: bool = True,
    ) -> BatchRangeResult:
        """Resolve one §2 range query per ``(low, high, start)`` triple.

        Same orchestration as the object core's
        :meth:`~repro.core.search.SearchEngine.query_range`: each range
        decomposes into its canonical cover prefixes
        (:func:`repro.core.keys.range_cover`); every ``(query, prefix)``
        pair runs an independent subtree-enumerating breadth search
        (fresh budget and visited set, like the per-prefix
        ``query_breadth`` calls); responders are deduplicated first-seen
        across a query's prefixes and their store entries are
        range-filtered and deduplicated by ``(key, holder)`` keeping the
        highest version.  ``with_refs=False`` skips the store fold for
        reach/accounting-only sweeps.
        """
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        if len(lows) != len(highs):
            raise ValueError(f"{len(lows)} lows but {len(highs)} highs")
        starts = np.asarray(starts, dtype=np.int64)
        if len(starts) != len(lows):
            raise ValueError(f"{len(lows)} ranges but {len(starts)} starts")
        budget = max_messages if max_messages is not None else self.max_messages
        q = len(lows)
        covers = [keyspace.range_cover(low, high) for low, high in zip(lows, highs)]
        # Flatten to independent (query, cover prefix) sub-searches;
        # each query's subs are contiguous, in cover (left-to-right) order.
        sub_base = np.zeros(q + 1, dtype=np.int64)
        owner_l: list[int] = []
        bits_l: list[int] = []
        len_l: list[int] = []
        start_l: list[int] = []
        for i, cover in enumerate(covers):
            for prefix in cover:
                owner_l.append(i)
                bits_l.append(int(prefix, 2) if prefix else 0)
                len_l.append(len(prefix))
                start_l.append(int(starts[i]))
            sub_base[i + 1] = len(owner_l)
        owner = np.asarray(owner_l, dtype=np.int64)
        skb = np.asarray(bits_l, dtype=np.int64)
        skl = np.asarray(len_l, dtype=np.int64)
        sst = np.asarray(start_l, dtype=np.int64)
        s = len(owner)
        sub_off = np.zeros(s + 1, dtype=np.int64)
        chunks = []
        sub_msgs = np.zeros(s, dtype=np.int64)
        sub_fail = np.zeros(s, dtype=np.int64)
        for lo in range(0, s, self.chunk):
            hi = min(lo + self.chunk, s)
            off, vals, m, fa = self._range_chunk(
                skb[lo:hi], skl[lo:hi], sst[lo:hi], recbreadth, budget
            )
            sub_off[lo + 1 : hi + 1] = off[1:] - off[:-1]
            chunks.append(vals)
            sub_msgs[lo:hi] = m
            sub_fail[lo:hi] = fa
        np.cumsum(sub_off, out=sub_off)
        sub_vals = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        messages = np.zeros(q, dtype=np.int64)
        failed = np.zeros(q, dtype=np.int64)
        if s:
            np.add.at(messages, owner, sub_msgs)
            np.add.at(failed, owner, sub_fail)
        # Store fold: index live entries by responding peer once per call
        # (the side store mutates freely between calls).
        by_peer: dict[int, list[tuple[int, int, int, int]]] = {}
        if with_refs and self._store:
            for (peer, bits, length, holder), version in self._store.items():
                by_peer.setdefault(peer, []).append((bits, length, holder, version))
        offsets = np.zeros(q + 1, dtype=np.int64)
        values: list[int] = []
        data_refs: list[list[DataRef]] = []
        for i in range(q):
            seen_r: set[int] = set()
            best: dict[tuple[str, int], int] = {}
            for sub in range(int(sub_base[i]), int(sub_base[i + 1])):
                pbits = int(skb[sub])
                plen = int(skl[sub])
                for rp in sub_vals[sub_off[sub] : sub_off[sub + 1]].tolist():
                    if rp not in seen_r:
                        seen_r.add(rp)
                        values.append(rp)
                    if not with_refs:
                        continue
                    for bits, length, holder, version in by_peer.get(rp, ()):
                        # in-prefix relation with the cover prefix, then
                        # the [low, high] interval filter (run_range).
                        mm = plen if plen < length else length
                        if (bits >> (length - mm)) != (pbits >> (plen - mm)):
                            continue
                        key = format(bits, f"0{length}b") if length else ""
                        if not key_in_range(key, lows[i], highs[i]):
                            continue
                        slot = (key, holder)
                        if version > best.get(slot, -1):
                            best[slot] = version
            offsets[i + 1] = len(values)
            data_refs.append(
                [
                    DataRef(key=key, holder=holder, version=version)
                    for (key, holder), version in sorted(best.items())
                ]
            )
        found = int(np.count_nonzero(offsets[1:] > offsets[:-1]))
        self._emit_batch(
            "batch_range", found, q, int(messages.sum()), int(failed.sum())
        )
        return BatchRangeResult(
            offsets,
            np.asarray(values, dtype=np.int64),
            messages,
            failed,
            covers,
            data_refs,
        )

    def _range_chunk(self, kb, kl, starts, recbreadth, max_messages):
        """One chunk of subtree-enumerating breadth searches.

        Same frontier discipline as :meth:`_breadth_chunk` with the
        range extension (``protocol.search.breadth_step`` with
        ``enumerate_subtree``): a responsible peer whose path extends
        past the query prefix additionally fans out at every level below
        the match point with an *empty* remaining query.  That breaks
        the ``consumed == trie level`` invariant the exact-search kernel
        relies on, so frontier entries carry the trie level and the
        remaining query length separately.  Within a column, duplicate
        ``(query, peer)`` contacts keep the first occurrence only — the
        sequential recursion would have marked the peer seen before the
        second parent tried it — which keeps message accounting exact in
        the all-online closure case.
        """
        n = self.n
        maxl = self.maxl
        refmax = self.refmax
        refs = self._refs
        pb = self._pb
        pl = self._pl
        rng = self._rng
        p = self.p_online
        q = len(kb)

        if q and (starts.min() < 0 or starts.max() >= n):
            raise ValueError("start indices out of range")
        msgs = np.zeros(q, dtype=np.int64)
        fails = np.zeros(q, dtype=np.int64)
        budget = np.full(q, max_messages, dtype=np.int64)
        resp_q: list = []
        resp_p: list = []
        qidx = np.arange(q, dtype=np.int64)
        seen = set((qidx * n + starts).tolist())
        one = np.int64(1)

        eq = qidx  # sub-search index
        ep = starts.copy()  # peer at this visit
        el = np.zeros(q, dtype=np.int64)  # trie level (path bits above)
        er = kl.astype(np.int64).copy()  # remaining query bits
        wave = 0
        while eq.size:
            slen = er
            sfx = kb[eq] & ((one << slen) - one)
            rlen = np.maximum(pl[ep] - el, 0)
            rem = pb[ep] & ((one << rlen) - one)
            m = np.minimum(slen, rlen)
            x = (sfx >> (slen - m)) ^ (rem >> (rlen - m))
            lc = m - self._bit_length(x)
            term = (lc == slen) | (lc == rlen)
            if term.any():
                resp_q.append(eq[term])
                resp_p.append(ep[term])
            # Fan-out tasks: (sub-search, ref row, child level, child qlen).
            parts_q: list = []
            parts_row: list = []
            parts_l: list = []
            parts_r: list = []
            div = ~term
            if div.any():
                nc = el[div] + lc[div]
                parts_q.append(eq[div])
                parts_row.append(ep[div] * maxl + nc)  # ref level nc+1
                parts_l.append(nc)
                parts_r.append(slen[div] - lc[div])
            en = term & (lc == slen)
            if en.any():
                base = el[en] + lc[en]
                count = pl[ep[en]] - base
                pos = count > 0
                if pos.any():
                    bq = eq[en][pos]
                    bp = ep[en][pos]
                    bc = count[pos]
                    total = int(bc.sum())
                    block = np.cumsum(bc) - bc
                    sub = np.arange(total, dtype=np.int64) - np.repeat(block, bc)
                    sublevel = np.repeat(base[pos], bc) + 1 + sub
                    parts_q.append(np.repeat(bq, bc))
                    parts_row.append(np.repeat(bp, bc) * maxl + sublevel - 1)
                    parts_l.append(sublevel)
                    parts_r.append(np.zeros(total, dtype=np.int64))
            contacts = offline = 0
            child_q: list = []
            child_p: list = []
            child_l: list = []
            child_r: list = []
            if parts_q:
                tq = np.concatenate(parts_q)
                trow = np.concatenate(parts_row)
                tl = np.concatenate(parts_l)
                tr = np.concatenate(parts_r)
                slot = refs[trow].astype(np.int64)
                valid = slot != -1
                cnt = valid.sum(axis=1)
                keys = rng.integers(0, self._key_mod, size=slot.shape, dtype=np.int64)
                pack = np.where(valid, (keys << self._vbits) | slot, _SENTINEL)
                pack.sort(axis=1)
                cand = pack & self._vmask
                fwd = np.zeros(len(tq), dtype=np.int64)
                for col in range(refmax):
                    live = (col < cnt) & (fwd < recbreadth) & (budget[tq] > 0)
                    if not live.any():
                        break
                    rows = np.flatnonzero(live)
                    cc = cand[rows, col]
                    keyv = tq[rows] * n + cc
                    fresh = np.fromiter(
                        (k not in seen for k in keyv.tolist()),
                        dtype=bool,
                        count=len(rows),
                    )
                    rows = rows[fresh]
                    if not rows.size:
                        continue
                    cc = cc[fresh]
                    keyv = keyv[fresh]
                    _, first = np.unique(keyv, return_index=True)
                    if len(first) < len(rows):
                        first.sort()
                        rows = rows[first]
                        cc = cc[first]
                        keyv = keyv[first]
                    contacts += int(rows.size)
                    if p >= 1.0:
                        on_mask = np.ones(rows.size, dtype=bool)
                    else:
                        on_mask = rng.random(rows.size) < p
                    off_rows = rows[~on_mask]
                    if off_rows.size:
                        np.add.at(fails, tq[off_rows], 1)
                        offline += int(off_rows.size)
                    on_rows = rows[on_mask]
                    if on_rows.size:
                        oq = tq[on_rows]
                        np.subtract.at(budget, oq, 1)
                        np.add.at(msgs, oq, 1)
                        fwd[on_rows] += 1
                        seen.update(keyv[on_mask].tolist())
                        child_q.append(oq)
                        child_p.append(cc[on_mask])
                        child_l.append(tl[on_rows])
                        child_r.append(tr[on_rows])
            self._emit_wave(
                "batch_range",
                wave,
                sum(len(c) for c in child_q),
                contacts,
                offline,
            )
            wave += 1
            if child_q:
                eq = np.concatenate(child_q)
                ep = np.concatenate(child_p)
                el = np.concatenate(child_l)
                er = np.concatenate(child_r)
            else:
                break
        if resp_q:
            rq = np.concatenate(resp_q)
            rp = np.concatenate(resp_p)
            order = np.argsort(rq, kind="stable")
            rq = rq[order]
            rp = rp[order]
        else:
            rq = np.empty(0, dtype=np.int64)
            rp = np.empty(0, dtype=np.int64)
        offsets = np.zeros(q + 1, dtype=np.int64)
        np.add.at(offsets, rq + 1, 1)
        np.cumsum(offsets, out=offsets)
        return offsets, rp, msgs, fails

    # -- §3/§5.2 update strategies ---------------------------------------------------

    def find_replicas_many(
        self,
        keys: Sequence[str],
        starts,
        *,
        strategy: UpdateStrategy,
        repetition: int = 1,
        recbreadth: int = 2,
    ) -> BatchReachResult:
        """Replica discovery per key under one of the three §3 strategies,
        batched: repetitions run as one tiled search wave, reached sets
        are unioned per original key."""
        if repetition < 1:
            raise ValueError(f"repetition must be >= 1, got {repetition}")
        kb, kl = keys if isinstance(keys, tuple) else _pack_keys(keys)
        starts = np.asarray(starts, dtype=np.int64)
        q = len(kb)
        tkb = np.tile(kb, repetition)
        tkl = np.tile(kl, repetition)
        tstarts = np.tile(starts, repetition)
        if strategy is UpdateStrategy.BFS:
            tiled = self.breadth_many(
                (tkb, tkl), tstarts, recbreadth=recbreadth
            )
            return _union_tiled_reach(tiled, q, repetition)
        result = self.search_many((tkb, tkl), tstarts)
        reach = _union_tiled_search(result, q, repetition)
        if strategy is UpdateStrategy.REPEATED_DFS:
            return reach
        if strategy is UpdateStrategy.DFS_BUDDIES:
            return self._forward_to_buddies(reach)
        raise ValueError(f"unknown strategy: {strategy!r}")

    def _forward_to_buddies(self, reach: BatchReachResult) -> BatchReachResult:
        """Strategy 2's second hop: each reached replica forwards to its
        buddy list; offline buddies count one failed attempt (no retry,
        matching the engines' historical §3 semantics)."""
        buddies = self._buddies
        pyrng = self._pyrng
        p = self.p_online
        offsets = reach.offsets
        values = reach.values
        messages = reach.messages.copy()
        failed = reach.failed_attempts.copy()
        out_offsets = np.zeros(len(reach) + 1, dtype=np.int64)
        out_values: list[int] = []
        for i in range(len(reach)):
            reached = values[offsets[i] : offsets[i + 1]].tolist()
            extended = list(reached)
            in_set = set(reached)
            for peer in reached:
                for buddy in sorted(buddies.get(peer, ())):
                    if buddy in in_set:
                        continue
                    if p >= 1.0 or pyrng.random() < p:
                        messages[i] += 1
                        in_set.add(buddy)
                        extended.append(buddy)
                    else:
                        failed[i] += 1
            out_values.extend(extended)
            out_offsets[i + 1] = len(out_values)
        return BatchReachResult(
            out_offsets,
            np.asarray(out_values, dtype=np.int64),
            messages,
            failed,
        )

    def publish_many(
        self,
        keys: Sequence[str],
        holders,
        versions,
        starts,
        *,
        strategy: UpdateStrategy = UpdateStrategy.BFS,
        repetition: int = 1,
        recbreadth: int = 2,
    ) -> BatchReachResult:
        """Insert/update one ``(key, holder) -> version`` ref per query at
        every replica the propagation strategy reaches (§3 update)."""
        kb, kl = keys if isinstance(keys, tuple) else _pack_keys(keys)
        holders = np.asarray(holders, dtype=np.int64)
        versions = np.asarray(versions, dtype=np.int64)
        reach = self.find_replicas_many(
            (kb, kl),
            starts,
            strategy=strategy,
            repetition=repetition,
            recbreadth=recbreadth,
        )
        store = self._store
        offsets = reach.offsets
        values = reach.values
        for i in range(len(reach)):
            bits = int(kb[i])
            length = int(kl[i])
            holder = int(holders[i])
            version = int(versions[i])
            for peer in values[offsets[i] : offsets[i + 1]].tolist():
                slot = (peer, bits, length, holder)
                if store.get(slot, -1) < version:
                    store[slot] = version
        return reach

    # -- §5.2 read disciplines -------------------------------------------------------

    def read_many(
        self,
        keys: Sequence[str],
        holders,
        versions,
        starts,
        *,
        repetitive: bool,
        max_repetitions: int = 200,
    ) -> BatchReadResult:
        """Read each ``(key, holder)`` at the given target version.

        Non-repetitive: one search each; success iff the answering
        replica already holds the version.  Repetitive: re-query (whole
        remaining batch per round) until a fresh replica answers, up to
        ``max_repetitions`` — the §5.2 trade-off the table 6 sweep
        measures."""
        if max_repetitions < 1:
            raise ValueError(f"max_repetitions must be >= 1, got {max_repetitions}")
        kb, kl = keys if isinstance(keys, tuple) else _pack_keys(keys)
        holders = np.asarray(holders, dtype=np.int64)
        versions = np.asarray(versions, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        q = len(kb)
        success = np.zeros(q, dtype=bool)
        messages = np.zeros(q, dtype=np.int64)
        failed = np.zeros(q, dtype=np.int64)
        repetitions = np.zeros(q, dtype=np.int64)
        pending = np.arange(q, dtype=np.int64)
        rounds = max_repetitions if repetitive else 1
        for _ in range(rounds):
            if not pending.size:
                break
            result = self.search_many(
                (kb[pending], kl[pending]), starts[pending]
            )
            messages[pending] += result.messages
            failed[pending] += result.failed_attempts
            repetitions[pending] += 1
            fresh = self._fresh_mask(
                result, kb[pending], kl[pending], holders[pending], versions[pending]
            )
            success[pending[fresh]] = True
            pending = pending[~fresh]
        return BatchReadResult(success, messages, failed, repetitions)

    def _fresh_mask(self, result: BatchSearchResult, kb, kl, holders, versions):
        """Which answered searches hit a replica already at the target
        version (``ReadEngine._responder_is_fresh`` semantics)."""
        store = self._store
        out = np.zeros(len(kb), dtype=bool)
        responder = result.responder
        found = result.found
        for i in range(len(kb)):
            if not found[i]:
                continue
            version = store.get(
                (int(responder[i]), int(kb[i]), int(kl[i]), int(holders[i])), -1
            )
            out[i] = version >= versions[i]
        return out

    # -- ground truth ----------------------------------------------------------------

    def replicas_for_keys(self, keys: Sequence[str]) -> BatchReachResult:
        """All peers whose path is in prefix relation with each key —
        the oracle :meth:`~repro.core.grid.PGrid.replicas_for_key`
        computes peer-by-peer, vectorized over the whole population."""
        kb, kl = keys if isinstance(keys, tuple) else _pack_keys(keys)
        pb = self._pb
        pl = self._pl
        q = len(kb)
        offsets = np.zeros(q + 1, dtype=np.int64)
        hits = []
        for i in range(q):
            m = np.minimum(pl, kl[i])
            x = (pb >> (pl - m)) ^ (kb[i] >> (kl[i] - m))
            peers = np.flatnonzero(x == 0)
            hits.append(peers)
            offsets[i + 1] = offsets[i] + len(peers)
        values = (
            np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
        )
        return BatchReachResult(
            offsets,
            values,
            np.zeros(q, dtype=np.int64),
            np.zeros(q, dtype=np.int64),
        )


def _union_tiled_search(result: BatchSearchResult, q: int, repetition: int):
    """Fold a ``repetition``-tiled DFS batch into per-original-query
    unioned responder sets + summed costs (repeated_queries semantics)."""
    messages = result.messages.reshape(repetition, q).sum(axis=0)
    failed = result.failed_attempts.reshape(repetition, q).sum(axis=0)
    offsets = np.zeros(q + 1, dtype=np.int64)
    values: list[int] = []
    found = result.found.reshape(repetition, q)
    responder = result.responder.reshape(repetition, q)
    for i in range(q):
        hits = responder[:, i][found[:, i]]
        uniq = np.unique(hits)
        values.extend(uniq.tolist())
        offsets[i + 1] = len(values)
    return BatchReachResult(
        offsets, np.asarray(values, dtype=np.int64), messages, failed
    )


def _union_tiled_reach(reach: BatchReachResult, q: int, repetition: int):
    """Union a ``repetition``-tiled breadth batch per original query."""
    messages = reach.messages.reshape(repetition, q).sum(axis=0)
    failed = reach.failed_attempts.reshape(repetition, q).sum(axis=0)
    offsets = np.zeros(q + 1, dtype=np.int64)
    values: list[int] = []
    for i in range(q):
        merged: set[int] = set()
        for r in range(repetition):
            j = r * q + i
            merged.update(
                reach.values[reach.offsets[j] : reach.offsets[j + 1]].tolist()
            )
        values.extend(sorted(merged))
        offsets[i + 1] = len(values)
    return BatchReachResult(
        offsets, np.asarray(values, dtype=np.int64), messages, failed
    )


def _oracle_p_online(oracle: Any) -> float:
    """Map an online oracle onto a single Bernoulli contact probability."""
    from repro.core.grid import AlwaysOnline
    from repro.sim.churn import BernoulliChurn

    if oracle is None or isinstance(oracle, AlwaysOnline):
        return 1.0
    if isinstance(oracle, BernoulliChurn) and not oracle._per_peer:
        return float(oracle.p_online)
    raise ValueError(
        "cannot infer p_online from this online oracle; pass p_online explicitly"
    )
