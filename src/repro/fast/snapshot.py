"""Shared-memory grid snapshots: one grid build, many processes.

A :class:`GridSnapshot` exports the packed :class:`~repro.fast.arraygrid.ArrayGrid`
buffers — paths, the routing slab, the buddy CSR, the leaf-store table —
into a single named :mod:`multiprocessing.shared_memory` segment, plus a
small picklable :class:`SnapshotHandle` describing the layout.  Any
process that holds the handle can :meth:`~GridSnapshot.attach` and get
read-only numpy views over the *same* physical pages: no copy, no pickle
of grid state, attach cost independent of grid size.

This is what lets ``--jobs`` experiment sweeps build a grid **once** and
fan it out: trial specs carry a :class:`SnapshotRef` (a few hundred
bytes pickled) instead of the grid; :func:`repro.perf.parallel.run_trials`
resolves the ref inside the worker via :func:`resolve`, which attaches
at most once per segment per process and caches the attachment.

Segment layout
--------------
All arrays live back-to-back in one segment, 16-byte aligned, in the
query-plane layout (so :meth:`GridSnapshot.batch_query_engine` is
zero-copy):

========================  =========  =======================================
field                     dtype      shape
========================  =========  =======================================
``path_bits``             int64      ``(n,)`` packed MSB-first paths
``path_len``              int64      ``(n,)``
``refs``                  int32      ``(n * maxl, refmax)``, ``-1`` padded
``ref_len``               int16      ``(n * maxl,)``
``table_depth``           int64      ``(n,)`` materialized routing levels
``addresses``             int64      ``(n,)`` dense index -> sparse address
``buddy_offsets``         int64      ``(n + 1,)`` buddy CSR offsets
``buddy_values``          int64      sorted buddy CSR values
``store``                 int64      ``(entries, 6)`` rows of
                                     ``(peer, key bits, key len, holder,
                                     version, deleted)``
========================  =========  =======================================

``store_items`` (full payload objects) are **not** captured — snapshots
serve the query plane, where only index refs matter; use the object core
when item payloads do.

Lifecycle
---------
The creating process *owns* the segment: ``close()`` drops its mapping,
``unlink()`` removes the name from the OS (``/dev/shm`` on Linux).  Used
as a context manager, the owner closes *and* unlinks on exit; attached
(non-owner) snapshots only close.  Attaching is safe exactly while the
segment is still linked or some process keeps it open — ship handles
only to workers that outlive the owner's ``unlink()`` at your own risk
(the POSIX segment survives until every mapping is gone, but new
attaches fail once unlinked).  Attachments made through :func:`resolve`
are cached per process and released atexit; a CPython < 3.13 wart makes
plain attaches register with the resource tracker (which would unlink
the segment when the *worker* exits), so every attach here explicitly
opts out of tracking.
"""

from __future__ import annotations

import atexit
import os
import secrets
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.config import PGridConfig

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    np = None

try:
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platforms without shared memory
    _shm = None
    _resource_tracker = None

if TYPE_CHECKING:  # pragma: no cover
    from repro.fast.arraygrid import ArrayGrid
    from repro.fast.batch import BatchGridBuilder
    from repro.fast.query import BatchQueryEngine

__all__ = [
    "GridSnapshot",
    "SnapshotHandle",
    "SnapshotRef",
    "attached_segments",
    "fresh_attach_count",
    "resolve",
]

_ALIGN = 16

#: Field order inside the segment (fixed — the handle records offsets).
_FIELDS = (
    "path_bits",
    "path_len",
    "refs",
    "ref_len",
    "table_depth",
    "addresses",
    "buddy_offsets",
    "buddy_values",
    "store",
)


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "grid snapshots require numpy; install it or use the object core"
        )
    if _shm is None:  # pragma: no cover - platforms without shared memory
        raise RuntimeError("multiprocessing.shared_memory is unavailable")


@dataclass(frozen=True)
class SnapshotHandle:
    """Picklable description of one shared-memory grid segment.

    Everything a process needs to :func:`resolve` the snapshot: the
    segment name, the grid config, and per-field ``(dtype, shape,
    offset)`` layout.  Pickles to a few hundred bytes regardless of grid
    size — this is what trial specs ship instead of the grid.
    """

    name: str
    n: int
    nbytes: int
    config: PGridConfig
    p_online: float
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]


class SnapshotRef:
    """A picklable stand-in for a :class:`GridSnapshot` in trial kwargs.

    :func:`repro.perf.parallel.run_trials` resolves any kwarg exposing
    ``__trial_resolve__`` before calling the trial function; a ref
    resolves to the owner snapshot in-process and to a cached attachment
    in workers, so the pool boundary only ever carries the handle.
    """

    __slots__ = ("handle",)

    def __init__(self, handle: "SnapshotHandle | GridSnapshot") -> None:
        if isinstance(handle, GridSnapshot):
            handle = handle.handle
        self.handle = handle

    def __trial_resolve__(self) -> "GridSnapshot":
        return resolve(self.handle)

    def __repr__(self) -> str:
        return f"SnapshotRef({self.handle.name!r}, n={self.handle.n})"


def _open_untracked(name: str):
    """Attach to a named segment without resource-tracker registration.

    Python < 3.13 registers *every* attach with the resource tracker,
    which unlinks the segment when the attaching process exits — exactly
    wrong for worker processes attaching a segment the parent owns.
    3.13+ grew ``track=False``; older versions need the unregister dance.
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        # Suppress the attach-time register instead of unregistering after
        # the fact: fork-started pool workers share the owner's tracker
        # process, and the tracker caches names in one per-type set, so an
        # unregister here would strip the owner's cleanup entry (the
        # owner's own unlink would then KeyError inside the tracker).
        register = _resource_tracker.register
        _resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shm.SharedMemory(name=name)
        finally:
            _resource_tracker.register = register


# Registries: owner snapshots by name (so in-process resolve returns the
# owner without a second mapping) and worker-side cached attachments.
_OWNED: dict[str, "GridSnapshot"] = {}
_ATTACHED: dict[str, "GridSnapshot"] = {}
_FRESH_ATTACHES = 0


def resolve(handle: SnapshotHandle) -> "GridSnapshot":
    """Handle → snapshot: owner if local, else a cached per-process attach.

    The first resolve of a segment in a process attaches (counted by
    :func:`fresh_attach_count`); later resolves are dictionary lookups.
    """
    snapshot = _OWNED.get(handle.name)
    if snapshot is not None and not snapshot.closed:
        return snapshot
    snapshot = _ATTACHED.get(handle.name)
    if snapshot is not None and not snapshot.closed:
        return snapshot
    global _FRESH_ATTACHES
    snapshot = GridSnapshot.attach(handle)
    _ATTACHED[handle.name] = snapshot
    _FRESH_ATTACHES += 1
    return snapshot


def fresh_attach_count() -> int:
    """How many segments this process attached via :func:`resolve`.

    The at-most-once-per-worker gate: under the snapshot path a worker
    resolves the same segment for every trial it runs, so this stays at
    the number of *distinct* snapshots, never the number of trials.
    """
    return _FRESH_ATTACHES


def attached_segments() -> list[dict[str, Any]]:
    """Live segments this process maps (owner and attached), for memory
    accounting: ``[{"name", "bytes", "role"}, ...]``."""
    out: list[dict[str, Any]] = []
    for name, snapshot in _OWNED.items():
        if not snapshot.closed:
            out.append({"name": name, "bytes": snapshot.nbytes, "role": "owner"})
    for name, snapshot in _ATTACHED.items():
        if not snapshot.closed:
            out.append({"name": name, "bytes": snapshot.nbytes, "role": "attached"})
    return out


def _close_attached() -> None:  # pragma: no cover - atexit plumbing
    for snapshot in list(_ATTACHED.values()):
        try:
            snapshot.close()
        except Exception:
            pass


atexit.register(_close_attached)


class GridSnapshot:
    """Read-only shared-memory view of one grid's packed state.

    Create with :meth:`from_arraygrid` / :meth:`from_batch_builder` (or
    :meth:`from_arrays` for pre-packed buffers); reconstruct in another
    process with :meth:`attach` or, preferably, ship a :meth:`ref` and
    let :func:`resolve` cache the attachment.  Consume via
    :meth:`arraygrid` (an :class:`ArrayGrid` view) or
    :meth:`batch_query_engine` (zero-copy query plane).
    """

    __slots__ = ("handle", "_segment", "_views", "_owner", "_owner_pid", "_closed")

    def __init__(self, handle: SnapshotHandle, segment, *, owner: bool) -> None:
        self.handle = handle
        self._segment = segment
        self._owner = owner
        # Fork-started pool workers inherit the owner object; implicit
        # cleanup must not unlink the segment from under the parent, so
        # the pid of the creating process gates __exit__/__del__.
        self._owner_pid = os.getpid() if owner else -1
        self._closed = False
        self._views: dict[str, Any] = {}
        buf = segment.buf
        for field, dtype, shape, offset in handle.fields:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
            view.flags.writeable = False
            self._views[field] = view

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, Any],
        *,
        n: int,
        config: PGridConfig,
        p_online: float = 1.0,
    ) -> "GridSnapshot":
        """Copy the packed state into a fresh named segment (the owner).

        ``arrays`` must provide every field in the module-docstring
        layout table; dtypes are coerced to the layout's.
        """
        _require_numpy()
        dtypes = {
            "path_bits": np.int64,
            "path_len": np.int64,
            "refs": np.int32,
            "ref_len": np.int16,
            "table_depth": np.int64,
            "addresses": np.int64,
            "buddy_offsets": np.int64,
            "buddy_values": np.int64,
            "store": np.int64,
        }
        missing = [field for field in _FIELDS if field not in arrays]
        if missing:
            raise ValueError(f"snapshot arrays missing fields: {missing}")
        packed = {
            field: np.ascontiguousarray(arrays[field], dtype=dtypes[field])
            for field in _FIELDS
        }
        fields: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        for field in _FIELDS:
            arr = packed[field]
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            fields.append((field, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        nbytes = max(offset, 1)
        segment = None
        for _ in range(16):
            name = f"pgrid_snap_{secrets.token_hex(6)}"
            try:
                segment = _shm.SharedMemory(name=name, create=True, size=nbytes)
                break
            except FileExistsError:  # pragma: no cover - 48-bit collision
                continue
        if segment is None:  # pragma: no cover - 48-bit collision
            raise RuntimeError("could not allocate a unique snapshot segment")
        handle = SnapshotHandle(
            name=segment.name,
            n=n,
            nbytes=nbytes,
            config=config,
            p_online=p_online,
            fields=tuple(fields),
        )
        snapshot = cls(handle, segment, owner=True)
        for field in _FIELDS:
            view = snapshot._views[field]
            view.flags.writeable = True
            view[...] = packed[field]
            view.flags.writeable = False
        _OWNED[handle.name] = snapshot
        return snapshot

    @classmethod
    def from_arraygrid(
        cls,
        grid: "ArrayGrid",
        *,
        p_online: float | None = None,
    ) -> "GridSnapshot":
        """Export an :class:`ArrayGrid` (typically bridged from a
        ``PGrid``) into shared memory.

        ``p_online`` defaults from the grid's online oracle the same way
        :meth:`BatchQueryEngine.from_arraygrid` does.  ``store_items``
        are not captured (see module docstring).
        """
        _require_numpy()
        from repro.fast.query import _oracle_p_online

        if p_online is None:
            p_online = _oracle_p_online(grid.online_oracle)
        n = grid.n
        maxl = grid.maxl
        refmax = grid.refmax
        refs = np.full((n * maxl, refmax), -1, dtype=np.int32)
        flat = grid.refs
        for row, count in enumerate(grid.ref_len):
            if count:
                base = row * refmax
                refs[row, :count] = flat[base : base + count]
        buddy_offsets, buddy_values = grid.buddies_csr()
        store_rows: list[tuple[int, int, int, int, int, int]] = []
        for peer, entries in sorted(grid.store_refs.items()):
            for (bits, length), holders in sorted(entries.items()):
                for holder, (version, deleted) in sorted(holders.items()):
                    store_rows.append(
                        (peer, bits, length, holder, version, int(deleted))
                    )
        store = (
            np.asarray(store_rows, dtype=np.int64)
            if store_rows
            else np.empty((0, 6), dtype=np.int64)
        )
        return cls.from_arrays(
            {
                "path_bits": grid.path_bits,
                "path_len": grid.path_len,
                "refs": refs,
                "ref_len": grid.ref_len,
                "table_depth": grid.table_depth,
                "addresses": grid.addresses,
                "buddy_offsets": buddy_offsets,
                "buddy_values": buddy_values,
                "store": store,
            },
            n=n,
            config=grid.config,
            p_online=p_online,
        )

    @classmethod
    def from_batch_builder(
        cls,
        builder: "BatchGridBuilder",
        *,
        p_online: float = 1.0,
    ) -> "GridSnapshot":
        """Export a (converged) gridless builder's state — the 100k+ peer
        path where no object grid ever exists.

        The builder carries no per-level materialization record, so
        ``table_depth`` is derived as each peer's deepest non-empty
        routing level (observably identical for query purposes).
        """
        _require_numpy()
        pb, pl, refs, rl, buddies = builder.snapshot_state()
        n = builder.n
        maxl = builder.config.maxl
        rl2 = np.asarray(rl).reshape(n, maxl)
        nonempty = rl2 > 0
        depth = np.where(
            nonempty.any(axis=1),
            maxl - np.argmax(nonempty[:, ::-1], axis=1),
            0,
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        values: list[int] = []
        for i in range(n):
            row = buddies.get(i) if buddies else None
            if row:
                values.extend(sorted(row))
            offsets[i + 1] = len(values)
        return cls.from_arrays(
            {
                "path_bits": pb,
                "path_len": pl,
                "refs": np.asarray(refs).reshape(n * maxl, builder.config.refmax),
                "ref_len": rl,
                "table_depth": depth,
                "addresses": np.arange(n, dtype=np.int64),
                "buddy_offsets": offsets,
                "buddy_values": np.asarray(values, dtype=np.int64),
                "store": np.empty((0, 6), dtype=np.int64),
            },
            n=n,
            config=builder.config,
            p_online=p_online,
        )

    @classmethod
    def attach(cls, handle: SnapshotHandle) -> "GridSnapshot":
        """Map an existing segment read-only (no copy, any process)."""
        _require_numpy()
        return cls(handle, _open_untracked(handle.name), owner=False)

    # -- identity -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def n(self) -> int:
        return self.handle.n

    @property
    def config(self) -> PGridConfig:
        return self.handle.config

    @property
    def p_online(self) -> float:
        return self.handle.p_online

    @property
    def nbytes(self) -> int:
        """Shared segment size in bytes (the off-heap footprint)."""
        return self.handle.nbytes

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    def ref(self) -> SnapshotRef:
        """The picklable stand-in to put in trial kwargs."""
        return SnapshotRef(self.handle)

    # -- views ----------------------------------------------------------------

    def view(self, field: str):
        """Read-only numpy view of one layout field."""
        if self._closed:
            raise ValueError(f"snapshot {self.name} is closed")
        return self._views[field]

    def buddies_dict(self) -> dict[int, set[int]]:
        """Buddy CSR → the sparse ``{peer: set}`` form the engines use."""
        offsets = self.view("buddy_offsets")
        values = self.view("buddy_values")
        out: dict[int, set[int]] = {}
        for i in range(self.n):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            if hi > lo:
                out[i] = set(values[lo:hi].tolist())
        return out

    def store_dict(self) -> dict[tuple[int, int, int, int], int]:
        """Live store rows in the query engine's side-store form
        (``(peer, key bits, key len, holder) -> version``, tombstones
        dropped)."""
        out: dict[tuple[int, int, int, int], int] = {}
        for peer, bits, length, holder, version, deleted in self.view("store").tolist():
            if not deleted:
                out[(peer, bits, length, holder)] = version
        return out

    def store_refs_dict(
        self,
    ) -> dict[int, dict[tuple[int, int], dict[int, tuple[int, bool]]]]:
        """Store rows in :class:`ArrayGrid`'s ``store_refs`` form
        (tombstones preserved)."""
        out: dict[int, dict[tuple[int, int], dict[int, tuple[int, bool]]]] = {}
        for peer, bits, length, holder, version, deleted in self.view("store").tolist():
            out.setdefault(peer, {}).setdefault((bits, length), {})[holder] = (
                version,
                bool(deleted),
            )
        return out

    # -- consumers ------------------------------------------------------------

    def arraygrid(self, *, rng=None, online_oracle=None) -> "ArrayGrid":
        """A read-only :class:`ArrayGrid` over the shared buffers.

        Query/statistics methods work unchanged; the flat buffers are
        immutable (exchange engines must not run on it) and
        ``store_items`` is empty by construction.
        """
        from repro.fast.arraygrid import ArrayGrid

        store_refs = self.store_refs_dict()
        return ArrayGrid.from_buffers(
            n=self.n,
            config=self.config,
            path_bits=self.view("path_bits"),
            path_len=self.view("path_len"),
            refs2d=self.view("refs"),
            ref_len=self.view("ref_len"),
            table_depth=self.view("table_depth"),
            addresses=self.view("addresses").tolist(),
            buddies=self.buddies_dict(),
            store_refs=store_refs,
            rng=rng,
            online_oracle=online_oracle,
        )

    def batch_query_engine(
        self,
        *,
        seed: int,
        p_online: float | None = None,
        max_messages: int | None = None,
        chunk: int = 8192,
        probe: Any = None,
    ) -> "BatchQueryEngine":
        """A :class:`BatchQueryEngine` directly over the shared buffers.

        The path and routing arrays are the segment's pages (zero copy);
        only the sparse buddy/store dictionaries are materialized on the
        heap.  ``p_online`` defaults to the value recorded at export.
        """
        from repro.fast.query import BatchQueryEngine

        engine = BatchQueryEngine(
            pb=self.view("path_bits"),
            pl=self.view("path_len"),
            refs=self.view("refs"),
            rl=self.view("ref_len"),
            n=self.n,
            config=self.config,
            buddies=self.buddies_dict(),
            addresses=self.view("addresses").tolist(),
            seed=seed,
            p_online=self.p_online if p_online is None else p_online,
            max_messages=max_messages,
            chunk=chunk,
            probe=probe,
        )
        engine._store = self.store_dict()
        return engine

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        Every numpy view handed out becomes invalid; engines built from
        the snapshot must be dropped first or ``BufferError`` is raised
        (the OS cannot unmap pages a live array still points into).
        """
        if self._closed:
            return
        self._views.clear()
        try:
            self._segment.close()
        except BufferError:
            raise BufferError(
                f"snapshot {self.name} still has live views "
                "(drop engines/arrays built from it before close())"
            ) from None
        self._closed = True
        _OWNED.pop(self.name, None)
        _ATTACHED.pop(self.name, None)

    def unlink(self) -> None:
        """Remove the segment name from the OS (owner's final release).

        Safe to call after :meth:`close`; idempotent if the name is
        already gone.  Existing mappings in other processes stay valid
        until they close.
        """
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "GridSnapshot":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
        if self._owner and os.getpid() == self._owner_pid:
            self.unlink()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown order
        try:
            if not self._closed:
                self._views.clear()
                self._segment.close()
                if self._owner and os.getpid() == self._owner_pid:
                    self._segment.unlink()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("owner" if self._owner else "attached")
        return (
            f"GridSnapshot({self.name!r}, n={self.n}, "
            f"nbytes={self.nbytes}, {state})"
        )
