"""Array-plane shortcut cache (the §6 query-adaptive optimization on
the batch query engine).

Mirrors :class:`repro.core.shortcuts.ShortcutCache` semantics on dense
peer indices: one bounded LRU per *origin* (initiating peer index)
mapping a packed query key to the responder index that last answered
it.  :meth:`BatchQueryEngine.search_many
<repro.fast.query.BatchQueryEngine.search_many>` consults it when
attached — a usable hit costs 0 messages from the responder itself and
1 otherwise, an unusable entry (responder offline or no longer
responsible, e.g. after a :class:`~repro.replication.balancer.ReplicaBalancer`
conversion) is invalidated and the query falls through to the normal
DFS, and found misses are cached.  Hit/miss/invalidation counters use
the same :class:`~repro.core.shortcuts.ShortcutStats` as the object
core, so experiment reports are comparable across cores.

This module is numpy-free on purpose — the cache is sparse bookkeeping;
the vectorized usability check lives in the engine.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.shortcuts import ShortcutStats

__all__ = ["ArrayShortcutCache"]


class ArrayShortcutCache:
    """Per-origin bounded LRU over ``(key bits, key len) -> responder``.

    Keys are packed integers (no string round-trips on the hot path);
    origins and responders are dense peer indices, which stay stable
    across batch-engine rebuilds because the address order is fixed.
    """

    __slots__ = ("capacity", "stats", "_caches")

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = ShortcutStats()
        self._caches: dict[int, OrderedDict[tuple[int, int], int]] = {}

    def get(self, origin: int, bits: int, length: int) -> int | None:
        """Cached responder for *origin*'s query, refreshing LRU order."""
        cache = self._caches.get(origin)
        if cache is None:
            return None
        key = (bits, length)
        if key not in cache:
            return None
        cache.move_to_end(key)
        return cache[key]

    def put(self, origin: int, bits: int, length: int, responder: int) -> None:
        """Remember *responder*, evicting *origin*'s LRU entry if full."""
        cache = self._caches.get(origin)
        if cache is None:
            cache = self._caches[origin] = OrderedDict()
        key = (bits, length)
        cache[key] = responder
        cache.move_to_end(key)
        while len(cache) > self.capacity:
            cache.popitem(last=False)

    def invalidate(self, origin: int, bits: int, length: int) -> None:
        """Drop *origin*'s entry for the query if present."""
        cache = self._caches.get(origin)
        if cache is not None:
            cache.pop((bits, length), None)

    def invalidate_responder(self, responder: int) -> int:
        """Drop every entry (any origin) pointing at *responder*.

        The replication balancer's conversion listener calls this when a
        peer changes replica group — its cached responsibility is stale.
        Returns the number of dropped entries (counted as
        invalidations).
        """
        removed = 0
        for cache in self._caches.values():
            stale = [key for key, value in cache.items() if value == responder]
            for key in stale:
                del cache[key]
            removed += len(stale)
        if removed:
            self.stats.invalidations += removed
        return removed

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._caches.clear()

    def __len__(self) -> int:
        return sum(len(cache) for cache in self._caches.values())
