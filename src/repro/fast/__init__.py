"""Flat-array construction core (ROADMAP item 2).

``repro.fast`` re-implements the Fig. 3 construction protocol over flat
integer state — packed-int paths, index-array routing tables, CSR
snapshots — so grids of 100k–1M peers can be built at an order of
magnitude higher exchange throughput than the object core.  Two engines
share the flat representation:

:class:`ArrayGridBuilder` (strict)
    Drop-in twin of :class:`repro.sim.builder.GridBuilder`, *bit
    identical* to the object core: same RNG draw sequence, same case
    counters, same convergence trajectory (verified by
    ``tests/fast/test_equivalence.py``).
:class:`BatchGridBuilder` (vectorized)
    Batched-round numpy engine — deterministic under a seed and
    statistically equivalent, an order of magnitude faster, and (in
    gridless mode) memory-lean enough for 100k–1M peers.

Entry points:

:class:`ArrayGrid`
    The flat grid state plus the ``from_pgrid`` / ``to_pgrid`` /
    ``write_back`` bridge to the object core.
:class:`ArrayExchangeEngine`
    The compiled exchange kernel (closure over the flat arrays).
"""

from repro.fast.arraygrid import ArrayGrid
from repro.fast.batch import BatchGridBuilder
from repro.fast.builder import ArrayGridBuilder
from repro.fast.engine import ArrayExchangeEngine
from repro.fast.mem import grid_memory_report, peak_rss_bytes, shared_memory_report
from repro.fast.query import (
    BatchQueryEngine,
    BatchRangeResult,
    BatchReachResult,
    BatchReadResult,
    BatchSearchResult,
)
from repro.fast.rngbuf import HAVE_NUMPY, BufferedReader, DirectReader, reader_for
from repro.fast.shortcuts import ArrayShortcutCache
from repro.fast.snapshot import GridSnapshot, SnapshotHandle, SnapshotRef

__all__ = [
    "ArrayGrid",
    "ArrayGridBuilder",
    "ArrayExchangeEngine",
    "ArrayShortcutCache",
    "BatchGridBuilder",
    "BatchQueryEngine",
    "BatchRangeResult",
    "BatchReachResult",
    "BatchReadResult",
    "BatchSearchResult",
    "BufferedReader",
    "DirectReader",
    "GridSnapshot",
    "SnapshotHandle",
    "SnapshotRef",
    "reader_for",
    "HAVE_NUMPY",
    "grid_memory_report",
    "peak_rss_bytes",
    "shared_memory_report",
]
