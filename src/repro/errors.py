"""Exception hierarchy for the P-Grid reproduction.

Every error raised by the library derives from :class:`PGridError` so that
callers can catch library failures with a single ``except`` clause while
programming errors (``TypeError``, ``ValueError`` from the standard library)
still surface normally.
"""

from __future__ import annotations


class PGridError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidKeyError(PGridError, ValueError):
    """A key string contains characters outside the binary alphabet."""

    def __init__(self, key: str) -> None:
        super().__init__(f"invalid binary key: {key!r} (only '0'/'1' allowed)")
        self.key = key


class InvalidConfigError(PGridError, ValueError):
    """A configuration object holds out-of-range or inconsistent values."""


class UnknownPeerError(PGridError, KeyError):
    """An address does not resolve to a registered peer."""

    def __init__(self, address: int) -> None:
        super().__init__(f"no peer registered under address {address!r}")
        self.address = address


class DuplicatePeerError(PGridError, ValueError):
    """A peer address is registered twice in the same network."""

    def __init__(self, address: int) -> None:
        super().__init__(f"peer address {address!r} already registered")
        self.address = address


class PeerOfflineError(PGridError, RuntimeError):
    """A message was sent to a peer that is currently offline."""

    def __init__(self, address: int) -> None:
        super().__init__(f"peer {address!r} is offline")
        self.address = address


class RoutingInvariantError(PGridError, AssertionError):
    """A routing-table entry violates the P-Grid reference invariant.

    The invariant (paper §2): a reference stored at level ``i`` of peer ``a``
    must point to a peer whose path shares ``prefix(i - 1, a)`` and carries
    the complement bit at position ``i``.
    """


class NotConvergedError(PGridError, RuntimeError):
    """A construction run exhausted its budget before reaching its target."""

    def __init__(self, message: str, *, exchanges: int, average_depth: float) -> None:
        super().__init__(message)
        self.exchanges = exchanges
        self.average_depth = average_depth


class SnapshotFormatError(PGridError, ValueError):
    """A persisted grid snapshot could not be decoded."""


class WireFormatError(PGridError, ValueError):
    """A wire frame could not be decoded into a protocol message."""


class TransportError(PGridError, RuntimeError):
    """A simulated transport failed to deliver a message."""


class NoHandlerError(TransportError):
    """A message was addressed to a destination with no registered handler.

    Distinguished from transient failures (offline peer, dropped message)
    because the destination is *gone* — the protocol machines treat it like
    a dangling routing reference and never retry it.
    """

    def __init__(self, address: int) -> None:
        super().__init__(f"no handler registered for destination {address!r}")
        self.address = address
