"""repro — a full reproduction of *P-Grid: A Self-organizing Access
Structure for P2P Information Systems* (Karl Aberer, 2002).

Quickstart
----------
>>> import random
>>> from repro import PGrid, PGridConfig, GridBuilder, SearchEngine
>>> grid = PGrid(PGridConfig(maxl=4, refmax=2, recmax=2),
...              rng=random.Random(7))
>>> _ = grid.add_peers(64)
>>> report = GridBuilder(grid).build()
>>> engine = SearchEngine(grid)
>>> result = engine.query_from(start=0, query="1010")
>>> result.found
True

Package layout
--------------
``repro.core``
    The paper's contribution: key space, peer state, search (Fig. 2),
    construction (Fig. 3), update strategies, §4 analysis.
``repro.sim``
    Simulation substrate: seeded RNG, meeting schedulers, churn models,
    grid builder, workloads, snapshots.
``repro.net``
    Simulated message transport with traffic accounting.
``repro.baselines``
    Gnutella-style flooding and central/replicated index servers (§1, §6).
``repro.faults``
    Fault injection (seeded fault plans over the transport), retry
    policies, and routing self-repair (see docs/RESILIENCE.md).
``repro.text``
    Prefix text search over P-Grid (§6 trie extension).
``repro.experiments``
    One runner per paper table/figure (see DESIGN.md experiment index).
``repro.report``
    ASCII tables/histograms and CSV output.
"""

from repro.core import (
    Address,
    AlwaysOnline,
    BreadthSearchResult,
    DataItem,
    DataRef,
    DataStore,
    ExchangeEngine,
    ExchangeStats,
    GridPlan,
    JoinReport,
    LeaveReport,
    MembershipEngine,
    PAPER_SECTION51_CONFIG,
    PAPER_SECTION52_CONFIG,
    Peer,
    PGrid,
    PGridConfig,
    RangeSearchResult,
    ReadEngine,
    ReadResult,
    RepairReport,
    RoutingTable,
    SearchConfig,
    SearchEngine,
    SearchResult,
    ShortcutCache,
    ShortcutSearchEngine,
    ShortcutStats,
    UpdateConfig,
    UpdateEngine,
    UpdateResult,
    UpdateStrategy,
    min_peers_for_replication,
    plan_grid,
    required_key_length,
    search_success_probability,
)
from repro.errors import (
    DuplicatePeerError,
    InvalidConfigError,
    InvalidKeyError,
    NotConvergedError,
    PGridError,
    PeerOfflineError,
    RoutingInvariantError,
    SnapshotFormatError,
    TransportError,
    UnknownPeerError,
)
from repro.faults import (
    NO_RETRY,
    FaultInjector,
    FaultPlan,
    RefHealer,
    RetryPolicy,
)
from repro.sim import (
    BernoulliChurn,
    ConstructionReport,
    GridBuilder,
    SessionChurn,
    UniformMeetings,
)

__version__ = "1.0.0"

__all__ = [
    "Address",
    "AlwaysOnline",
    "BernoulliChurn",
    "BreadthSearchResult",
    "ConstructionReport",
    "DataItem",
    "DataRef",
    "DataStore",
    "DuplicatePeerError",
    "ExchangeEngine",
    "ExchangeStats",
    "FaultInjector",
    "FaultPlan",
    "GridBuilder",
    "GridPlan",
    "InvalidConfigError",
    "InvalidKeyError",
    "JoinReport",
    "LeaveReport",
    "MembershipEngine",
    "NO_RETRY",
    "NotConvergedError",
    "PAPER_SECTION51_CONFIG",
    "PAPER_SECTION52_CONFIG",
    "PGrid",
    "PGridConfig",
    "PGridError",
    "Peer",
    "PeerOfflineError",
    "RangeSearchResult",
    "ReadEngine",
    "ReadResult",
    "RefHealer",
    "RepairReport",
    "RetryPolicy",
    "RoutingInvariantError",
    "RoutingTable",
    "SearchConfig",
    "SearchEngine",
    "SearchResult",
    "SessionChurn",
    "ShortcutCache",
    "ShortcutSearchEngine",
    "ShortcutStats",
    "SnapshotFormatError",
    "TransportError",
    "UniformMeetings",
    "UnknownPeerError",
    "UpdateConfig",
    "UpdateEngine",
    "UpdateResult",
    "UpdateStrategy",
    "min_peers_for_replication",
    "plan_grid",
    "required_key_length",
    "search_success_probability",
    "__version__",
]
