"""repro — a full reproduction of *P-Grid: A Self-organizing Access
Structure for P2P Information Systems* (Karl Aberer, 2002).

Quickstart
----------
>>> from repro import Grid
>>> grid = Grid.build(peers=64, maxl=4, refmax=2, seed=7)
>>> grid.search("1010").found
True
>>> with grid.serve(driver="node") as svc:   # or "engine" / "async"
...     svc.search("1010", start=5).found
True

:class:`Grid` (see :mod:`repro.api`) is the facade over construction,
search, update and the three interchangeable drivers of the sans-I/O
protocol core.  The legacy constructors (``GridBuilder``,
``SearchEngine``, ``UpdateEngine``, ``ReadEngine``) keep working but
importing them from the top level is deprecated — import them from
their home modules (``repro.sim``, ``repro.core``) or use the facade.

Package layout
--------------
``repro.core``
    The paper's contribution: key space, peer state, search (Fig. 2),
    construction (Fig. 3), update strategies, §4 analysis.
``repro.sim``
    Simulation substrate: seeded RNG, meeting schedulers, churn models,
    grid builder, workloads, snapshots.
``repro.net``
    Simulated message transport with traffic accounting.
``repro.baselines``
    Gnutella-style flooding and central/replicated index servers (§1, §6).
``repro.faults``
    Fault injection (seeded fault plans over the transport), retry
    policies, and routing self-repair (see docs/RESILIENCE.md).
``repro.text``
    Prefix text search over P-Grid (§6 trie extension).
``repro.experiments``
    One runner per paper table/figure (see DESIGN.md experiment index).
``repro.report``
    ASCII tables/histograms and CSV output.
"""

from repro.api import Grid
from repro.core import (
    Address,
    AlwaysOnline,
    BreadthSearchResult,
    DataItem,
    DataRef,
    DataStore,
    ExchangeEngine,
    ExchangeStats,
    GridPlan,
    JoinReport,
    LeaveReport,
    MembershipEngine,
    PAPER_SECTION51_CONFIG,
    PAPER_SECTION52_CONFIG,
    Peer,
    PGrid,
    PGridConfig,
    RangeSearchResult,
    ReadResult,
    RepairReport,
    RoutingTable,
    SearchConfig,
    SearchResult,
    ShortcutCache,
    ShortcutSearchEngine,
    ShortcutStats,
    UpdateConfig,
    UpdateResult,
    UpdateStrategy,
    min_peers_for_replication,
    plan_grid,
    required_key_length,
    search_success_probability,
)
from repro.errors import (
    DuplicatePeerError,
    InvalidConfigError,
    InvalidKeyError,
    NotConvergedError,
    PGridError,
    PeerOfflineError,
    RoutingInvariantError,
    SnapshotFormatError,
    TransportError,
    UnknownPeerError,
)
from repro.faults import (
    NO_RETRY,
    FaultInjector,
    FaultPlan,
    RefHealer,
    RetryPolicy,
)
from repro.sim import (
    BernoulliChurn,
    ConstructionReport,
    SessionChurn,
    UniformMeetings,
)

__version__ = "1.0.0"

# Legacy constructors: still fully supported at their home modules, but
# top-level imports now go through the Grid facade.  PEP 562 module
# __getattr__ keeps `from repro import SearchEngine` working (with a
# DeprecationWarning) without the engines paying an eager-import cost —
# and without the warning firing for in-package imports, which all use
# the home modules directly.
_DEPRECATED_TOP_LEVEL = {
    "GridBuilder": ("repro.sim", "Grid.build(...)"),
    "SearchEngine": ("repro.core", "Grid.search(...) / grid.serve(...)"),
    "UpdateEngine": ("repro.core", "Grid.update(...) / grid.serve(...)"),
    "ReadEngine": ("repro.core", "Grid.reads"),
}


def __getattr__(name: str):
    try:
        module_name, replacement = _DEPRECATED_TOP_LEVEL[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    import warnings

    warnings.warn(
        f"importing {name} from the top-level 'repro' package is deprecated; "
        f"use {replacement} (repro.api.Grid) or import it from {module_name}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DEPRECATED_TOP_LEVEL))

__all__ = [
    "Address",
    "AlwaysOnline",
    "BernoulliChurn",
    "BreadthSearchResult",
    "ConstructionReport",
    "DataItem",
    "DataRef",
    "DataStore",
    "DuplicatePeerError",
    "ExchangeEngine",
    "ExchangeStats",
    "FaultInjector",
    "FaultPlan",
    "Grid",
    "GridBuilder",
    "GridPlan",
    "InvalidConfigError",
    "InvalidKeyError",
    "JoinReport",
    "LeaveReport",
    "MembershipEngine",
    "NO_RETRY",
    "NotConvergedError",
    "PAPER_SECTION51_CONFIG",
    "PAPER_SECTION52_CONFIG",
    "PGrid",
    "PGridConfig",
    "PGridError",
    "Peer",
    "PeerOfflineError",
    "RangeSearchResult",
    "ReadEngine",
    "ReadResult",
    "RefHealer",
    "RepairReport",
    "RetryPolicy",
    "RoutingInvariantError",
    "RoutingTable",
    "SearchConfig",
    "SearchEngine",
    "SearchResult",
    "SessionChurn",
    "ShortcutCache",
    "ShortcutSearchEngine",
    "ShortcutStats",
    "SnapshotFormatError",
    "TransportError",
    "UniformMeetings",
    "UnknownPeerError",
    "UpdateConfig",
    "UpdateEngine",
    "UpdateResult",
    "UpdateStrategy",
    "min_peers_for_replication",
    "plan_grid",
    "required_key_length",
    "search_success_probability",
    "__version__",
]
