"""ASCII table rendering for experiment output.

The benchmark harness prints each paper table/figure as a plain-text table
(the offline environment has no plotting stack), in the same row/column
layout the paper uses so results can be compared side by side.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any, *, float_digits: int = 2) -> str:
    """Human-friendly cell formatting (floats rounded, None blank)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.{float_digits}f}"
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_digits: int = 2,
) -> str:
    """Render a boxed ASCII table.

    >>> print(render_table(["n", "e"], [[1, 2.5]]))
    | n | e    |
    |---|------|
    | 1 | 2.50 |
    """
    formatted = [
        [format_value(cell, float_digits=float_digits) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in formatted)
    return "\n".join(parts)
