"""Plain-text reporting: ASCII tables, histograms, CSV/JSON writers."""

from repro.report.csvout import results_dir, write_csv, write_json
from repro.report.hist import render_histogram, render_plot, render_series
from repro.report.tables import format_value, render_table

__all__ = [
    "format_value",
    "render_histogram",
    "render_plot",
    "render_series",
    "render_table",
    "results_dir",
    "write_csv",
    "write_json",
]
