"""ASCII histograms and series plots for the paper's figures."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_histogram", "render_series", "render_plot"]


def render_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    title: str | None = None,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Character-grid line plot of one or more (x, y) series.

    Each series gets a marker (``*``, ``o``, ``+``, ...); axes are scaled
    to the joint data range.  Good enough to eyeball convergence curves in
    a terminal without a plotting stack.
    """
    if width < 8 or height < 4:
        raise ValueError("plot needs width >= 8 and height >= 4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(empty plot)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_max:g}, bottom={y_min:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)


def render_histogram(
    pairs: Sequence[tuple[int, int]],
    *,
    title: str | None = None,
    width: int = 50,
    value_label: str = "value",
    count_label: str = "count",
) -> str:
    """Horizontal bar chart of ``(value, count)`` pairs (Fig. 4 rendering).

    >>> print(render_histogram([(1, 2), (2, 4)], width=4))
    1 | ##   2
    2 | #### 4
    """
    if not pairs:
        return "(empty histogram)"
    max_count = max(count for _, count in pairs) or 1
    value_width = max(len(str(value)) for value, _ in pairs)
    lines = []
    if title:
        lines.append(title)
        lines.append(f"{value_label} -> {count_label}")
    bar_widths = [
        max(1, round(count / max_count * width)) if count else 0
        for _, count in pairs
    ]
    bar_pad = max(bar_widths, default=1)
    for (value, count), bar in zip(pairs, bar_widths):
        lines.append(
            f"{str(value).rjust(value_width)} | {('#' * bar).ljust(bar_pad)} {count}"
        )
    return "\n".join(lines)


def render_series(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
    float_digits: int = 3,
) -> str:
    """Tabular rendering of one or more (x, y) series (Fig. 5 rendering).

    Each series is printed as aligned columns; the caller is expected to
    pass comparable x grids (points are listed per series, not joined).
    """
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"-- {name} ({x_label} -> {y_label})")
        for x, y in points:
            lines.append(f"   {x:>12.{float_digits}f} -> {y:.{float_digits}f}")
    return "\n".join(lines)
