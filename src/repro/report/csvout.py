"""CSV and JSON result writers.

Every benchmark writes its rows under ``benchmarks/results/`` so the
numbers survive the pytest run and can be diffed against the paper (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Sequence

__all__ = ["write_csv", "write_json", "results_dir"]


def results_dir(base: str | Path | None = None) -> Path:
    """The results directory (created on demand)."""
    root = Path(base) if base is not None else Path("benchmarks") / "results"
    root.mkdir(parents=True, exist_ok=True)
    return root


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> Path:
    """Write a header + rows CSV file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells but header has {len(headers)}"
                )
            writer.writerow(list(row))
    return target


def write_json(path: str | Path, payload: Any) -> Path:
    """Write *payload* as pretty JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return target
