"""The randomized P-Grid construction algorithm (paper §3, Fig. 3).

Whenever two peers meet they execute ``exchange``: depending on the relation
between their paths they either split the search space (case 1), specialize
the shorter path against the longer one (cases 2/3), or — having already
diverged — forward each other to their own references for recursive
exchanges (case 4).  Meetings are driven by :mod:`repro.sim.meetings`; the
pairwise protocol itself lives in the sans-I/O machine
:func:`repro.protocol.exchange.exchange_step` — this module is its direct
driver facade and keeps the statistics.

Pseudo-code fidelity notes (see DESIGN.md §4):

* ``IF lc > 0`` guards only the reference-exchange block — the CASE analysis
  must run for ``lc = 0`` too, otherwise the initial all-empty-path
  population could never bootstrap (case 1 with ``lc = 0`` is the very first
  split any pair performs).
* The counter ``e`` reported by §5.1 counts *calls to the exchange
  function*, including recursive ones; :attr:`ExchangeStats.calls` matches.
* Table 4 vs. table 5: the original algorithm recurses into *every*
  reference at the divergence level, which makes ``e`` explode with
  ``refmax``; the paper's fix limits recursion to a bounded random subset.
  ``PGridConfig.recursion_fanout`` selects between the two.
* When both peers already hold the same *complete* path (``lc == maxl``)
  no case fires, but the peers are replicas: they record each other as
  *buddies* (update strategy 2 of §3 relies on these lists) and
  anti-entropy their leaf-level index entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.obs.probe import Probe
from repro.protocol.direct import run_exchange
from repro.protocol.exchange import (
    ExchangeContext,
    exchange_refs_default,
    may_specialize,
)

__all__ = ["ExchangeStats", "ExchangeEngine"]


@dataclass
class ExchangeStats:
    """Counters accumulated across ``exchange`` executions."""

    calls: int = 0
    meetings: int = 0
    case1_splits: int = 0
    case2_specializations: int = 0
    case3_specializations: int = 0
    case4_recursions: int = 0
    buddy_links: int = 0
    ref_handover_entries: int = 0
    ref_handover_lost: int = 0
    case_counts: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy for experiment records."""
        return {
            "calls": self.calls,
            "meetings": self.meetings,
            "case1_splits": self.case1_splits,
            "case2_specializations": self.case2_specializations,
            "case3_specializations": self.case3_specializations,
            "case4_recursions": self.case4_recursions,
            "buddy_links": self.buddy_links,
            "ref_handover_entries": self.ref_handover_entries,
            "ref_handover_lost": self.ref_handover_lost,
        }


class ExchangeEngine:
    """Executes the Fig. 3 protocol on a :class:`PGrid`.

    ``probe`` receives one ``on_meeting`` per top-level meeting and one
    ``on_exchange_case`` per CASE action fired (including recursive
    exchanges); ``None`` disables observation.

    ``balancer`` (a :class:`repro.replication.ReplicaBalancer`) is given
    each finished meeting as a replication opportunity — the Spiral-Walk
    idea of replicating along contacts the protocol makes anyway.
    ``None``, or a balancer whose strategy/thresholds never fire, leaves
    every run bit-identical to an unbalanced one (the balancer draws no
    RNG; property-tested like probes and fault plans).
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        config: PGridConfig | None = None,
        probe: Probe | None = None,
        balancer=None,
    ) -> None:
        self.grid = grid
        self.config = config or grid.config
        self.probe = probe
        self.balancer = balancer
        self.stats = ExchangeStats()
        self._ctx = ExchangeContext(
            self.config,
            grid.rng,
            self.stats,
            exchange_refs=self._exchange_refs,
            split_gate=self._may_specialize,
            observed=probe is not None,
        )

    # -- public entry point ------------------------------------------------------

    def meet(self, address1: Address, address2: Address) -> int:
        """One random meeting: run ``exchange(a1, a2, 0)``.

        Returns the number of ``exchange`` calls the meeting triggered
        (1 plus any case-4 recursion).
        """
        if address1 == address2:
            raise ValueError("a peer cannot meet itself")
        before = self.stats.calls
        self.stats.meetings += 1
        if self.probe is not None:
            self.probe.on_meeting(address1, address2)
        ctx = self._ctx
        ctx.observed = self.probe is not None
        run_exchange(
            self.grid,
            ctx,
            self.probe,
            self.grid.peer(address1),
            self.grid.peer(address2),
            0,
        )
        if self.balancer is not None:
            self.balancer.after_meeting(address1, address2)
        return self.stats.calls - before

    # -- subclass hooks -----------------------------------------------------------

    def _may_specialize(self, peer: Peer) -> bool:
        """Data-driven split gate (§3's threshold hint); see
        :func:`repro.protocol.exchange.may_specialize`."""
        return may_specialize(peer, self.config)

    def _exchange_refs(self, a1: Peer, a2: Peer, lc: int) -> None:
        """Union + re-sample the reference sets at the shared level(s).

        :class:`repro.sim.topology.ProximityExchangeEngine` overrides this
        to retain nearest references instead of a uniform re-sample.
        """
        exchange_refs_default(a1, a2, lc, self.config, self.grid.rng)
