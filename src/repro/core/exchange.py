"""The randomized P-Grid construction algorithm (paper §3, Fig. 3).

Whenever two peers meet they execute ``exchange``: depending on the relation
between their paths they either split the search space (case 1), specialize
the shorter path against the longer one (cases 2/3), or — having already
diverged — forward each other to their own references for recursive
exchanges (case 4).  Meetings are driven by :mod:`repro.sim.meetings`; this
module implements the pairwise protocol itself.

Pseudo-code fidelity notes (see DESIGN.md §4):

* ``IF lc > 0`` guards only the reference-exchange block — the CASE analysis
  must run for ``lc = 0`` too, otherwise the initial all-empty-path
  population could never bootstrap (case 1 with ``lc = 0`` is the very first
  split any pair performs).
* The counter ``e`` reported by §5.1 counts *calls to the exchange
  function*, including recursive ones; :attr:`ExchangeStats.calls` matches.
* Table 4 vs. table 5: the original algorithm recurses into *every*
  reference at the divergence level, which makes ``e`` explode with
  ``refmax``; the paper's fix limits recursion to a bounded random subset.
  ``PGridConfig.recursion_fanout`` selects between the two.
* When both peers already hold the same *complete* path (``lc == maxl``)
  no case fires, but the peers are replicas: they record each other as
  *buddies* (update strategy 2 of §3 relies on these lists) and
  anti-entropy their leaf-level index entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import keys as keyspace
from repro.core.config import PGridConfig
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.obs.probe import Probe


@dataclass
class ExchangeStats:
    """Counters accumulated across ``exchange`` executions."""

    calls: int = 0
    meetings: int = 0
    case1_splits: int = 0
    case2_specializations: int = 0
    case3_specializations: int = 0
    case4_recursions: int = 0
    buddy_links: int = 0
    ref_handover_entries: int = 0
    ref_handover_lost: int = 0
    case_counts: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy for experiment records."""
        return {
            "calls": self.calls,
            "meetings": self.meetings,
            "case1_splits": self.case1_splits,
            "case2_specializations": self.case2_specializations,
            "case3_specializations": self.case3_specializations,
            "case4_recursions": self.case4_recursions,
            "buddy_links": self.buddy_links,
            "ref_handover_entries": self.ref_handover_entries,
            "ref_handover_lost": self.ref_handover_lost,
        }


class ExchangeEngine:
    """Executes the Fig. 3 protocol on a :class:`PGrid`.

    ``probe`` receives one ``on_meeting`` per top-level meeting and one
    ``on_exchange_case`` per CASE action fired (including recursive
    exchanges); ``None`` disables observation.
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        config: PGridConfig | None = None,
        probe: Probe | None = None,
    ) -> None:
        self.grid = grid
        self.config = config or grid.config
        self.probe = probe
        self.stats = ExchangeStats()

    # -- public entry point ------------------------------------------------------

    def meet(self, address1: Address, address2: Address) -> int:
        """One random meeting: run ``exchange(a1, a2, 0)``.

        Returns the number of ``exchange`` calls the meeting triggered
        (1 plus any case-4 recursion).
        """
        if address1 == address2:
            raise ValueError("a peer cannot meet itself")
        before = self.stats.calls
        self.stats.meetings += 1
        if self.probe is not None:
            self.probe.on_meeting(address1, address2)
        self._exchange(self.grid.peer(address1), self.grid.peer(address2), 0)
        return self.stats.calls - before

    # -- Fig. 3 body ---------------------------------------------------------------

    def _exchange(self, a1: Peer, a2: Peer, depth: int) -> None:
        self.stats.calls += 1
        config = self.config
        commonpath = keyspace.common_prefix(a1.path, a2.path)
        lc = len(commonpath)

        if lc > 0:
            self._exchange_refs(a1, a2, lc)

        l1 = a1.depth - lc
        l2 = a2.depth - lc

        probe = self.probe
        if l1 == 0 and l2 == 0:
            if (
                lc < config.maxl
                and self._may_specialize(a1)
                and self._may_specialize(a2)
            ):
                self._case1_split(a1, a2, lc)
                if probe is not None:
                    probe.on_exchange_case("case1", a1.address, a2.address, lc, depth)
            else:
                # Identical paths that will not split further (depth or
                # data threshold reached): the peers are replicas.
                self._record_replicas(a1, a2)
                if probe is not None:
                    probe.on_exchange_case(
                        "replicas", a1.address, a2.address, lc, depth
                    )
        elif l1 == 0 and l2 > 0:
            if lc < config.maxl and self._may_specialize(a1):
                self._case23_specialize(shorter=a1, longer=a2, lc=lc)
                self.stats.case2_specializations += 1
                if probe is not None:
                    probe.on_exchange_case("case2", a1.address, a2.address, lc, depth)
        elif l1 > 0 and l2 == 0:
            if lc < config.maxl and self._may_specialize(a2):
                self._case23_specialize(shorter=a2, longer=a1, lc=lc)
                self.stats.case3_specializations += 1
                if probe is not None:
                    probe.on_exchange_case("case3", a1.address, a2.address, lc, depth)
        else:  # l1 > 0 and l2 > 0: paths diverge at bit lc + 1
            if depth < config.recmax:
                if probe is not None:
                    probe.on_exchange_case("case4", a1.address, a2.address, lc, depth)
                self._case4_recurse(a1, a2, lc, depth)

    def _may_specialize(self, peer: Peer) -> bool:
        """Data-driven split gate (§3's threshold hint).

        With ``split_min_items`` unset every split is allowed (the paper's
        default).  Otherwise a peer only deepens its path while it is
        responsible for at least that many index entries — splitting a
        near-empty region buys nothing and costs references.
        """
        threshold = self.config.split_min_items
        if threshold is None:
            return True
        return peer.store.ref_count >= threshold

    # -- reference exchange at shared levels ---------------------------------------

    def _exchange_refs(self, a1: Peer, a2: Peer, lc: int) -> None:
        """Union + re-sample the reference sets at the shared level(s).

        The paper exchanges only at the deepest shared level ``lc``;
        ``exchange_refs_all_levels`` extends this to every level ``1..lc``
        (ablation AB4).
        """
        levels = range(1, lc + 1) if self.config.exchange_refs_all_levels else (lc,)
        rng = self.grid.rng
        for level in levels:
            combined = [
                address
                for address in (*a1.routing.refs(level), *a2.routing.refs(level))
                if address not in (a1.address, a2.address)
            ]
            if not combined:
                continue
            a1.routing.merge_refs(level, combined, rng)
            a2.routing.merge_refs(level, combined, rng)

    # -- case 1: both remaining paths empty — introduce a new level ------------------

    def _case1_split(self, a1: Peer, a2: Peer, lc: int) -> None:
        a1.extend_path("0")
        a2.extend_path("1")
        a1.routing.set_refs(lc + 1, [a2.address])
        a2.routing.set_refs(lc + 1, [a1.address])
        self._handover_refs(a1, a2)
        self._handover_refs(a2, a1)
        self.stats.case1_splits += 1

    # -- cases 2/3: one path is a prefix of the other — specialize the shorter -------

    def _case23_specialize(self, shorter: Peer, longer: Peer, lc: int) -> None:
        """The shorter peer takes the branch *opposite* the longer peer's.

        This opposite choice is the paper's balancing mechanism: imbalances
        in bit popularity are compensated because newcomers fill the less
        covered side.
        """
        opposite = keyspace.complement_bit(longer.path[lc])
        shorter.extend_path(opposite)
        shorter.routing.set_refs(lc + 1, [longer.address])
        longer.routing.merge_refs(lc + 1, [shorter.address], self.grid.rng)
        self._handover_refs(shorter, longer)

    # -- case 4: already diverged — forward to referenced peers ----------------------

    def _case4_recurse(self, a1: Peer, a2: Peer, lc: int, depth: int) -> None:
        config = self.config
        if config.mutual_refs_in_case4:
            a1.routing.add_ref(lc + 1, a2.address)
            a2.routing.add_ref(lc + 1, a1.address)
        refs1 = [r for r in a1.routing.refs(lc + 1) if r != a2.address]
        refs2 = [r for r in a2.routing.refs(lc + 1) if r != a1.address]
        fanout = config.recursion_fanout
        rng = self.grid.rng
        if fanout is not None:
            if len(refs1) > fanout:
                refs1 = rng.sample(refs1, fanout)
            if len(refs2) > fanout:
                refs2 = rng.sample(refs2, fanout)
        self.stats.case4_recursions += 1
        for address in refs1:
            if (
                address != a2.address
                and self.grid.has_peer(address)
                and self.grid.is_online(address)
            ):
                self._exchange(a2, self.grid.peer(address), depth + 1)
        for address in refs2:
            if (
                address != a1.address
                and self.grid.has_peer(address)
                and self.grid.is_online(address)
            ):
                self._exchange(a1, self.grid.peer(address), depth + 1)

    # -- replicas: identical complete paths ------------------------------------------

    def _record_replicas(self, a1: Peer, a2: Peer) -> None:
        """Identical paths at ``maxl``: buddy links + index anti-entropy."""
        a1.add_buddy(a2.address)
        a2.add_buddy(a1.address)
        a1.merge_buddies(a2.buddies)
        a2.merge_buddies(a1.buddies)
        a1.buddies.discard(a1.address)
        a2.buddies.discard(a2.address)
        self.stats.buddy_links += 1
        for ref in list(a1.store.iter_refs()):
            a2.store.add_ref(ref)
        for ref in list(a2.store.iter_refs()):
            a1.store.add_ref(ref)

    # -- index hand-over on specialization ---------------------------------------------

    def _handover_refs(self, specialized: Peer, partner: Peer) -> None:
        """Move index entries that left *specialized*'s responsibility.

        Entries covered by the partner's (possibly deeper) path move there;
        entries the partner does not cover either are counted as lost —
        in a deployed system they would be re-inserted via a search, which
        the update engine models explicitly.
        """
        dropped = specialized.store.drop_refs_outside(specialized.path)
        for ref in dropped:
            if keyspace.in_prefix_relation(ref.key, partner.path):
                partner.store.add_ref(ref)
                self.stats.ref_handover_entries += 1
            else:
                self.stats.ref_handover_lost += 1
