"""Binary key space of the P-Grid (paper §2).

Keys and peer paths are binary strings over ``{'0', '1'}``.  A key
``k = p_1 ... p_n`` corresponds to the value ``val(k) = sum_i 2^-i p_i`` and
to the half-open interval ``I(k) = [val(k), val(k) + 2^-n)`` of the unit
interval.  A peer *responsible for path k* serves every query key whose value
falls inside ``I(k)`` — equivalently, every key that is in a prefix relation
with ``k``.

This module is pure: plain functions over ``str`` so that the algorithm
modules stay close to the paper's pseudo-code (``common_prefix_of``,
``sub_path``, bit complement, ...).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Iterator, Sequence

from repro.errors import InvalidKeyError

#: The binary alphabet used by paths and keys.
ALPHABET = ("0", "1")

#: The empty path — the root of the virtual trie; every peer starts here.
EMPTY_PATH = ""


def is_valid_key(key: str) -> bool:
    """Return ``True`` iff *key* consists only of ``'0'``/``'1'`` characters.

    The empty string is a valid key (the root path).
    """
    # str.strip removes every leading/trailing character from the set, so
    # the result is empty iff the key is pure 0/1 — a single C call instead
    # of a Python-level loop over characters.
    return not key.strip("01")


def validate_key(key: str) -> str:
    """Return *key* unchanged, raising :class:`InvalidKeyError` if malformed."""
    if not isinstance(key, str) or not is_valid_key(key):
        raise InvalidKeyError(key)
    return key


def key_value(key: str) -> Fraction:
    """Exact ``val(k) = sum_i 2^-i p_i`` as a :class:`~fractions.Fraction`.

    Using exact rational arithmetic keeps interval comparisons correct for
    arbitrarily long keys (floats lose bits beyond length 52).

    >>> key_value("1")
    Fraction(1, 2)
    >>> key_value("01")
    Fraction(1, 4)
    """
    validate_key(key)
    return _key_value_unchecked(key)


def _key_value_unchecked(key: str) -> Fraction:
    """:func:`key_value` without the validation pass.

    Internal fast path for callers that already validated *key* at their
    own API boundary (routing/search hot loops).
    """
    if not key:
        return Fraction(0)
    return Fraction(int(key, 2), 1 << len(key))


def key_interval(key: str) -> tuple[Fraction, Fraction]:
    """Exact interval ``I(k) = [val(k), val(k) + 2^-n)`` as a pair.

    The empty key maps to the whole unit interval ``[0, 1)``.
    """
    validate_key(key)
    low = _key_value_unchecked(key)
    return low, low + Fraction(1, 1 << len(key))


def interval_contains(key: str, query: str) -> bool:
    """Return ``True`` iff ``val(query)`` lies inside ``I(key)``.

    Per the paper, a peer responsible for ``I(key)`` must answer every query
    key whose value belongs to the interval.  For binary strings this is
    equivalent to *key being a prefix of query* **or** *query being a prefix
    of key* — property tests assert the equivalence.
    """
    validate_key(key)
    validate_key(query)
    return _interval_contains_unchecked(key, query)


def _interval_contains_unchecked(key: str, query: str) -> bool:
    """:func:`interval_contains` on pre-validated keys, without Fractions.

    Brings both values to the common denominator ``2^max(n, m)`` and
    compares plain shifted integers — exact for arbitrarily long keys, no
    rational arithmetic on the hot path.
    """
    n = len(key)
    m = len(query)
    width = max(n, m)
    low = int(key, 2) << (width - n) if n else 0
    value = int(query, 2) << (width - m) if m else 0
    return low <= value < low + (1 << (width - n))


def is_prefix(prefix: str, key: str) -> bool:
    """Return ``True`` iff *prefix* is a (possibly equal) prefix of *key*."""
    return key.startswith(prefix)


def in_prefix_relation(a: str, b: str) -> bool:
    """Return ``True`` iff one of the two keys is a prefix of the other."""
    return a.startswith(b) or b.startswith(a)


def common_prefix(a: str, b: str) -> str:
    """Longest common prefix of two keys (paper's ``common_prefix_of``).

    >>> common_prefix("0110", "0101")
    '01'
    """
    # The routing loops terminate on full prefix agreement, so answer that
    # case with one C-level startswith instead of a Python character loop.
    if a.startswith(b):
        return b
    if b.startswith(a):
        return a
    # Neither is a prefix of the other, so a divergence is guaranteed
    # before either string ends — no bounds check needed in the loop.
    i = 0
    while a[i] == b[i]:
        i += 1
    return a[:i]


def common_prefix_length(a: str, b: str) -> int:
    """Length of the longest common prefix of *a* and *b*."""
    return len(common_prefix(a, b))


def sub_path(path: str, start: int, end: int) -> str:
    """The paper's ``sub_path(p1...pn, l, k) = pl...pk`` (1-based, inclusive).

    Provided for pseudo-code parity; internal code uses Python slices.

    >>> sub_path("abcde", 2, 4)
    'bcd'
    """
    return path[start - 1 : end]


def complement_bit(bit: str) -> str:
    """The paper's ``p^- = (p + 1) MOD 2`` on a single character bit."""
    if bit == "0":
        return "1"
    if bit == "1":
        return "0"
    raise InvalidKeyError(bit)


def flip_last_bit(key: str) -> str:
    """Return *key* with its final bit complemented (sibling leaf)."""
    if not key:
        raise InvalidKeyError(key)
    return key[:-1] + complement_bit(key[-1])


def bit_at(key: str, level: int) -> str:
    """The paper's ``value(k, p1...pn) = pk`` — 1-based bit accessor.

    >>> bit_at("011", 2)
    '1'
    """
    if not 1 <= level <= len(key):
        raise IndexError(f"level {level} out of range for key of length {len(key)}")
    return key[level - 1]


def random_key(length: int, rng: random.Random) -> str:
    """A uniformly random binary key of exactly *length* bits."""
    if length < 0:
        raise ValueError(f"key length must be non-negative, got {length}")
    return "".join(rng.choice(ALPHABET) for _ in range(length))


def all_keys(length: int) -> Iterator[str]:
    """Yield every binary key of exactly *length* bits, in numeric order.

    >>> list(all_keys(2))
    ['00', '01', '10', '11']
    """
    if length < 0:
        raise ValueError(f"key length must be non-negative, got {length}")
    if length == 0:
        yield EMPTY_PATH
        return
    for value in range(2**length):
        yield format(value, f"0{length}b")


def key_from_value(value: float, length: int) -> str:
    """Quantize ``value`` in ``[0, 1)`` to the length-*length* key whose
    interval contains it (inverse of :func:`key_value`, up to truncation).

    >>> key_from_value(0.3, 3)
    '010'
    """
    if not 0.0 <= value < 1.0:
        raise ValueError(f"value must be in [0, 1), got {value}")
    if length < 0:
        raise ValueError(f"key length must be non-negative, got {length}")
    return format(int(value * (2**length)), f"0{length}b") if length else EMPTY_PATH


def prefixes(key: str) -> Iterator[str]:
    """Yield every proper-and-improper prefix of *key*, shortest first,
    starting with the empty path.

    >>> list(prefixes("01"))
    ['', '0', '01']
    """
    for i in range(len(key) + 1):
        yield key[:i]


def range_cover(low: str, high: str) -> list[str]:
    """Minimal set of prefixes whose intervals tile ``[low, high]``.

    *low* and *high* are keys of equal length with ``low <= high``; the
    covered range is the union of their leaf intervals and everything in
    between — i.e. all equal-length keys ``low <= k <= high``.  The result
    is the classic canonical trie decomposition: the unique minimal
    antichain of prefixes covering the range, in left-to-right order.

    This is what turns P-Grid's order-preserving key space into a range
    index: a range query searches one responsible peer set per cover
    prefix.

    >>> range_cover("001", "110")
    ['001', '01', '10', '110']
    >>> range_cover("000", "111")
    ['']
    """
    validate_key(low)
    validate_key(high)
    if len(low) != len(high):
        raise ValueError(
            f"range bounds must have equal length: {low!r} vs {high!r}"
        )
    if low > high:
        raise ValueError(f"range is empty: {low!r} > {high!r}")

    cover: list[str] = []

    def descend(prefix: str) -> None:
        depth = len(prefix)
        # Smallest and largest leaves under this prefix.
        first = prefix + "0" * (len(low) - depth)
        last = prefix + "1" * (len(low) - depth)
        if last < low or first > high:
            return  # disjoint from the range
        if low <= first and last <= high:
            cover.append(prefix)  # fully contained: maximal cover node
            return
        descend(prefix + "0")
        descend(prefix + "1")

    descend("")
    return cover


def average_length(keys: Sequence[str]) -> float:
    """Mean key length of a non-empty sequence — the paper's convergence
    measure ``(1/N) * sum length(path(a))``."""
    if not keys:
        raise ValueError("average_length of an empty sequence is undefined")
    return sum(len(key) for key in keys) / len(keys)
