"""Closed-form analysis of search performance and grid sizing (paper §4).

Given the population size ``N``, the data volume ``d_global``, the per-peer
index budget and the online probability ``p``, §4 derives:

* eq. (1) — required key length: ``k >= log2(d_global / i_leaf)``;
* eq. (2) — replication feasibility: ``(d_global / i_leaf) * refmax <= N``;
* eq. (3) — search success probability: ``(1 - (1 - p)^refmax)^k``.

:func:`plan_grid` packages the §4 worked example: pick ``i_leaf`` and ``k``
under a storage budget, then report the success probability and minimum
community size.  The benchmark ``test_analysis_example.py`` checks the
planner reproduces the paper's numbers (k = 10, refmax = 20, N >= 20409,
success > 99%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidConfigError


def required_key_length(d_global: int, i_leaf: int) -> int:
    """Eq. (1): smallest integer ``k`` with ``2^k >= d_global / i_leaf``.

    ``k`` is the trie depth needed so that each leaf interval holds at most
    ``i_leaf`` data references.
    """
    if d_global < 1:
        raise ValueError(f"d_global must be >= 1, got {d_global}")
    if i_leaf < 1:
        raise ValueError(f"i_leaf must be >= 1, got {i_leaf}")
    ratio = d_global / i_leaf
    if ratio <= 1:
        return 0
    return math.ceil(math.log2(ratio))


def index_entries_per_peer(i_leaf: int, key_length: int, refmax: int) -> int:
    """Total per-peer index entries: ``i_leaf + k * refmax`` (§4)."""
    if i_leaf < 0 or key_length < 0 or refmax < 0:
        raise ValueError("i_leaf, key_length and refmax must be non-negative")
    return i_leaf + key_length * refmax


def min_peers_for_replication(d_global: int, i_leaf: int, refmax: int) -> int:
    """Eq. (2): smallest ``N`` with ``(d_global / i_leaf) * refmax <= N``.

    Every leaf interval needs at least ``refmax`` replicas, so the community
    must be at least as large as ``#leaves * refmax``.
    """
    if refmax < 1:
        raise ValueError(f"refmax must be >= 1, got {refmax}")
    if i_leaf < 1:
        raise ValueError(f"i_leaf must be >= 1, got {i_leaf}")
    if d_global < 1:
        raise ValueError(f"d_global must be >= 1, got {d_global}")
    return math.ceil(d_global / i_leaf * refmax)


def search_success_probability(p_online: float, refmax: int, key_length: int) -> float:
    """Eq. (3): ``(1 - (1 - p)^refmax)^k``.

    At each of the ``k`` levels the search survives iff at least one of the
    ``refmax`` referenced peers is online.
    """
    if not 0.0 <= p_online <= 1.0:
        raise ValueError(f"p_online must be in [0, 1], got {p_online}")
    if refmax < 1:
        raise ValueError(f"refmax must be >= 1, got {refmax}")
    if key_length < 0:
        raise ValueError(f"key_length must be >= 0, got {key_length}")
    per_level = 1.0 - (1.0 - p_online) ** refmax
    return per_level**key_length


def expected_search_messages(key_length: int) -> float:
    """Rough §5.2 expectation: a search resolves one level per message in
    the worst case and starts with a random shared prefix, so the expected
    number of forwards is about ``k - 1`` in the worst case and
    ``sum_{i>=1} k / 2^i``-ish on average.  We report the simple upper
    bound used for sanity checks: ``key_length``.
    """
    if key_length < 0:
        raise ValueError(f"key_length must be >= 0, got {key_length}")
    return float(key_length)


@dataclass(frozen=True)
class GridPlan:
    """Output of :func:`plan_grid` — one feasible P-Grid sizing."""

    d_global: int
    reference_bytes: int
    storage_bytes_per_peer: int
    p_online: float
    i_peer: int
    i_leaf: int
    key_length: int
    refmax: int
    min_peers: int
    success_probability: float
    storage_used: int

    def meets(self, target_success: float) -> bool:
        """Whether the plan achieves the desired search reliability."""
        return self.success_probability >= target_success


def plan_grid(
    d_global: int,
    *,
    reference_bytes: int = 10,
    storage_bytes_per_peer: int = 100_000,
    p_online: float = 0.3,
    refmax: int = 20,
    i_leaf: int | None = None,
) -> GridPlan:
    """Size a P-Grid for a workload, following the §4 worked example.

    ``i_peer = storage / reference_bytes`` bounds the total index entries a
    peer may hold.  If *i_leaf* is not given we take the largest value that
    leaves room for ``k * refmax`` routing entries (solving the §4
    "guess" step exactly by iterating the mutual dependency between
    ``i_leaf`` and ``k`` to a fixed point).
    """
    if reference_bytes < 1:
        raise InvalidConfigError(
            f"reference_bytes must be >= 1, got {reference_bytes}"
        )
    if storage_bytes_per_peer < reference_bytes:
        raise InvalidConfigError(
            "storage_bytes_per_peer must hold at least one reference"
        )
    i_peer = storage_bytes_per_peer // reference_bytes
    if i_leaf is None:
        i_leaf = i_peer  # optimistic start: all budget to leaf entries
        for _ in range(64):  # fixed point reached in a couple of rounds
            key_length = required_key_length(d_global, i_leaf)
            candidate = i_peer - key_length * refmax
            if candidate < 1:
                raise InvalidConfigError(
                    "storage budget too small for the routing table alone"
                )
            if candidate == i_leaf:
                break
            i_leaf = candidate
    key_length = required_key_length(d_global, i_leaf)
    used = index_entries_per_peer(i_leaf, key_length, refmax)
    if used > i_peer:
        raise InvalidConfigError(
            f"plan needs {used} entries but the budget is {i_peer}"
        )
    return GridPlan(
        d_global=d_global,
        reference_bytes=reference_bytes,
        storage_bytes_per_peer=storage_bytes_per_peer,
        p_online=p_online,
        i_peer=i_peer,
        i_leaf=i_leaf,
        key_length=key_length,
        refmax=refmax,
        min_peers=min_peers_for_replication(d_global, i_leaf, refmax),
        success_probability=search_success_probability(
            p_online, refmax, key_length
        ),
        storage_used=used * reference_bytes,
    )


def central_server_costs(d_global: int, n_clients: int) -> dict[str, object]:
    """§6 comparison: asymptotic costs of a centralized replicated server.

    Storage on the server grows with the data volume ``O(D)``; query load on
    the server grows with the client count ``O(N)`` (each node issues a
    constant query rate, and every query hits the server).
    """
    if d_global < 0 or n_clients < 0:
        raise ValueError("d_global and n_clients must be non-negative")
    return {
        "server_storage": d_global,
        "client_storage": 1,
        "server_query_load": n_clients,
        "client_query_messages": 1,
    }


def pgrid_costs(d_global: int, n_peers: int, *, refmax: int = 1) -> dict[str, object]:
    """§6 comparison: per-peer P-Grid costs.

    Per-peer storage is ``O(log D)`` routing entries (plus the leaf bucket)
    and a query costs ``O(log N)`` messages.
    """
    if d_global < 1 or n_peers < 1:
        raise ValueError("d_global and n_peers must be >= 1")
    return {
        "peer_storage": max(1, math.ceil(math.log2(d_global))) * refmax,
        "query_messages": max(1, math.ceil(math.log2(n_peers))),
    }
