"""The P-Grid network container.

:class:`PGrid` owns the peer registry, the construction configuration, the
seeded random source shared by the randomized algorithms, and the *online
oracle* (availability model).  It also exposes the structural statistics the
paper's evaluation reports: average path length (convergence measure §5.1),
the replica distribution (Fig. 4), and per-peer storage footprints (§4, §6).

The container is deliberately passive — the algorithms live in
:mod:`repro.core.exchange`, :mod:`repro.core.search` and
:mod:`repro.core.updates`.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Iterator, Protocol

from repro.core import keys as keyspace
from repro.core.config import PGridConfig
from repro.core.peer import Address, Peer
from repro.core.storage import DataItem, DataRef
from repro.errors import DuplicatePeerError, UnknownPeerError


class OnlineOracle(Protocol):
    """Availability model consulted before any peer-to-peer interaction.

    The paper models availability as a probability ``online: P -> [0, 1]``
    evaluated at contact time; implementations live in
    :mod:`repro.sim.churn`.
    """

    def is_online(self, address: Address) -> bool:
        """Whether the peer at *address* answers a contact attempt now."""
        ...  # pragma: no cover - protocol


class AlwaysOnline:
    """Oracle for failure-free runs (the §5.1 construction experiments)."""

    def is_online(self, address: Address) -> bool:  # noqa: ARG002
        return True


class PGrid:
    """A population of peers plus the shared P-Grid parameters."""

    def __init__(
        self,
        config: PGridConfig | None = None,
        *,
        rng: random.Random | None = None,
        online_oracle: OnlineOracle | None = None,
    ) -> None:
        self.config = config or PGridConfig()
        self.rng = rng or random.Random()
        self.online_oracle: OnlineOracle = online_oracle or AlwaysOnline()
        self._peers: dict[Address, Peer] = {}
        self._next_address = 0
        self._membership_version = 0

    # -- membership -----------------------------------------------------------

    @property
    def membership_version(self) -> int:
        """Monotonic counter bumped on every join/leave.

        Lets consumers that derive state from the peer population (meeting
        schedulers' address lists, the builder's incremental depth) cache
        against the population and revalidate in O(1) instead of re-reading
        all peers on every call.
        """
        return self._membership_version

    def add_peer(self, address: Address | None = None) -> Peer:
        """Create and register a fresh peer; returns it.

        Addresses are auto-assigned unless given explicitly (snapshots).
        """
        if address is None:
            address = self._next_address
        if address in self._peers:
            raise DuplicatePeerError(address)
        peer = Peer(address, self.config.refmax)
        self._peers[address] = peer
        self._next_address = max(self._next_address, address + 1)
        self._membership_version += 1
        return peer

    def add_peers(self, count: int) -> list[Peer]:
        """Create *count* fresh peers."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.add_peer() for _ in range(count)]

    def remove_peer(self, address: Address) -> Peer:
        """Unregister *address* and return its final state.

        References held by other peers become dangling — the membership
        engine repairs them lazily (:mod:`repro.core.membership`), exactly
        as a deployed system discovers dead peers only on contact.
        """
        try:
            peer = self._peers.pop(address)
        except KeyError:
            raise UnknownPeerError(address) from None
        self._membership_version += 1
        return peer

    def peer(self, address: Address) -> Peer:
        """Resolve an address (the paper's ``peer(r)``)."""
        try:
            return self._peers[address]
        except KeyError:
            raise UnknownPeerError(address) from None

    def has_peer(self, address: Address) -> bool:
        """Whether *address* is registered."""
        return address in self._peers

    def peers(self) -> Iterator[Peer]:
        """Iterate peers in address order (deterministic)."""
        for address in sorted(self._peers):
            yield self._peers[address]

    def addresses(self) -> list[Address]:
        """Sorted list of all registered addresses."""
        return sorted(self._peers)

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, address: object) -> bool:
        return address in self._peers

    # -- availability ------------------------------------------------------------

    def is_online(self, address: Address) -> bool:
        """Consult the availability model for *address*."""
        return self.online_oracle.is_online(address)

    # -- structural statistics (paper §4/§5) --------------------------------------

    def average_path_length(self) -> float:
        """The §5.1 convergence measure ``(1/N) Σ length(path(a))``."""
        if not self._peers:
            return 0.0
        return sum(peer.depth for peer in self._peers.values()) / len(self._peers)

    def path_length_histogram(self) -> Counter[int]:
        """Number of peers per path length."""
        return Counter(peer.depth for peer in self._peers.values())

    def replica_groups(self) -> dict[str, list[Address]]:
        """Map each held path to the sorted addresses holding it exactly."""
        groups: dict[str, list[Address]] = {}
        for peer in self.peers():
            groups.setdefault(peer.path, []).append(peer.address)
        return groups

    def replication_histogram(self) -> Counter[int]:
        """Fig. 4's distribution: per peer, how many peers share its path.

        The paper plots, for each replication factor r, the number of peers
        whose path is held by exactly r peers (including themselves).
        """
        group_sizes = {
            path: len(addresses) for path, addresses in self.replica_groups().items()
        }
        return Counter(
            group_sizes[peer.path] for peer in self._peers.values()
        )

    def average_replication(self) -> float:
        """Mean replication factor over peers (paper reports 19.46)."""
        if not self._peers:
            return 0.0
        histogram = self.replication_histogram()
        total = sum(factor * count for factor, count in histogram.items())
        return total / len(self._peers)

    def replicas_for_key(self, query: str) -> list[Address]:
        """Every peer responsible for *query* (path in prefix relation).

        This is the ground-truth replica set the §5.2 update experiments
        compare against.
        """
        keyspace.validate_key(query)
        return [
            peer.address for peer in self.peers() if peer.responsible_for(query)
        ]

    def total_routing_refs(self) -> int:
        """Sum of routing references over all peers (storage metric)."""
        return sum(peer.routing.total_refs() for peer in self._peers.values())

    def max_index_footprint(self) -> int:
        """Largest per-peer index footprint (routing + leaf refs)."""
        if not self._peers:
            return 0
        return max(peer.index_footprint() for peer in self._peers.values())

    # -- data seeding ----------------------------------------------------------------

    def seed_index(self, items: list[tuple[DataItem, Address]]) -> int:
        """Bootstrap the leaf-level index outside the protocol.

        Stores each item at its holder and installs a version-0
        :class:`DataRef` at *every* currently responsible peer.  Experiments
        use this to start from a fully consistent index before measuring
        update propagation; protocol-level insertion lives in
        :mod:`repro.core.updates`.

        Returns the number of index entries installed.
        """
        installed = 0
        for item, holder in items:
            self.peer(holder).store.store_item(item)
            ref = DataRef(key=item.key, holder=holder, version=0)
            for address in self.replicas_for_key(item.key):
                self.peer(address).store.add_ref(ref)
                installed += 1
        return installed

    # -- invariant audit ---------------------------------------------------------------

    def audit_routing(self) -> list[str]:
        """Check the §2 reference invariant for every stored reference.

        A reference at level ``i`` of peer ``a`` must point to a registered
        peer whose path starts with ``prefix(i-1, a)`` followed by the
        complement of bit ``i`` of ``path(a)``.  Returns human-readable
        violation descriptions (empty list = consistent grid).
        """
        violations: list[str] = []
        for peer in self.peers():
            for level, refs in peer.routing.iter_levels():
                if level > peer.depth:
                    if refs:
                        violations.append(
                            f"peer {peer.address}: refs at level {level} beyond "
                            f"path depth {peer.depth}"
                        )
                    continue
                expected = peer.prefix(level - 1) + keyspace.complement_bit(
                    peer.path[level - 1]
                )
                for address in refs:
                    if address not in self._peers:
                        violations.append(
                            f"peer {peer.address}: dangling ref {address} at "
                            f"level {level}"
                        )
                        continue
                    target = self._peers[address].path
                    if not target.startswith(expected):
                        violations.append(
                            f"peer {peer.address}: ref {address} at level {level} "
                            f"has path {target!r}, expected prefix {expected!r}"
                        )
        return violations

    def __repr__(self) -> str:
        return (
            f"PGrid(N={len(self._peers)}, avg_depth={self.average_path_length():.2f}, "
            f"config={self.config})"
        )
