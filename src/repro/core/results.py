"""Shared protocol for engine result objects.

Every engine result that carries the §5.2 cost model — ``messages``
(successful contacts) and ``failed_attempts`` (offline misses) — mixes in
:class:`ContactAccounting`, which derives ``total_contacts`` once instead
of each result class (or each experiment script) recomputing it.

:class:`SearchOutcome` is the structural protocol experiments should
program against: any object exposing ``found`` / ``messages`` /
``failed_attempts`` / ``total_contacts`` qualifies, so code that tallies
costs works across :class:`~repro.core.search.SearchResult`,
:class:`~repro.core.search.RangeSearchResult`,
:class:`~repro.core.search.BreadthSearchResult`,
:class:`~repro.core.updates.UpdateResult` and
:class:`~repro.core.updates.ReadResult` without isinstance ladders.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["ContactAccounting", "SearchOutcome"]


class ContactAccounting:
    """Mixin deriving aggregate cost from ``messages``/``failed_attempts``.

    Deliberately carries *no annotated fields*: the concrete result
    dataclasses declare ``messages`` and ``failed_attempts`` themselves,
    so mixing this in never alters their dataclass field order.
    """

    __slots__ = ()

    @property
    def total_contacts(self) -> int:
        """Messages plus failed contact attempts (total network activity)."""
        return self.messages + self.failed_attempts  # type: ignore[attr-defined]

    def cost_dict(self) -> dict[str, Any]:
        """The cost fields as a flat dict (for experiment records)."""
        return {
            "found": bool(self.found),  # type: ignore[attr-defined]
            "messages": self.messages,  # type: ignore[attr-defined]
            "failed_attempts": self.failed_attempts,  # type: ignore[attr-defined]
            "total_contacts": self.total_contacts,
        }


@runtime_checkable
class SearchOutcome(Protocol):
    """Structural type of every cost-accounted engine result."""

    messages: int
    failed_attempts: int

    @property
    def found(self) -> bool:
        """Whether the operation reached at least one responsible peer."""
        ...  # pragma: no cover - protocol

    @property
    def total_contacts(self) -> int:
        """Messages plus failed contact attempts."""
        ...  # pragma: no cover - protocol
