"""Per-level routing references of a peer (paper §2).

A peer with path ``p_1 ... p_n`` keeps, for every level ``i`` in ``1..n``, a
bounded set ``R_i`` of addresses of peers whose paths share
``prefix(i - 1)`` and carry the *complement* bit at position ``i``.  These
references route a query sideways whenever its next bit diverges from the
local path.

The table is deliberately a thin, well-tested container: the exchange and
search algorithms own all protocol logic, the table owns bounds, uniqueness
and deterministic sampling.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

Address = int


class RoutingTable:
    """Level-indexed reference sets with a per-level capacity ``refmax``.

    Levels are 1-based to match the paper.  Internally each level stores an
    insertion-ordered list without duplicates, which keeps random sampling
    reproducible under a seeded :class:`random.Random`.
    """

    def __init__(self, refmax: int) -> None:
        if refmax < 1:
            raise ValueError(f"refmax must be >= 1, got {refmax}")
        self._refmax = refmax
        self._levels: list[list[Address]] = []

    @property
    def refmax(self) -> int:
        """Per-level capacity."""
        return self._refmax

    @property
    def depth(self) -> int:
        """Number of levels currently materialized."""
        return len(self._levels)

    def _level_slot(self, level: int) -> list[Address]:
        if level < 1:
            raise IndexError(f"routing levels are 1-based, got {level}")
        while len(self._levels) < level:
            self._levels.append([])
        return self._levels[level - 1]

    def refs(self, level: int) -> list[Address]:
        """Copy of the reference list at *level* (empty if unmaterialized)."""
        if level < 1:
            raise IndexError(f"routing levels are 1-based, got {level}")
        if level > len(self._levels):
            return []
        return list(self._levels[level - 1])

    def set_refs(self, level: int, refs: Iterable[Address]) -> None:
        """Replace the references at *level* (deduplicated, order kept).

        Raises :class:`ValueError` if more than ``refmax`` distinct
        references are supplied.
        """
        unique = list(dict.fromkeys(refs))
        if len(unique) > self._refmax:
            raise ValueError(
                f"{len(unique)} refs exceed refmax={self._refmax} at level {level}"
            )
        slot = self._level_slot(level)
        slot.clear()
        slot.extend(unique)

    def add_ref(self, level: int, address: Address) -> bool:
        """Insert *address* at *level* if absent and capacity allows.

        Returns ``True`` if the table changed.
        """
        slot = self._level_slot(level)
        if address in slot or len(slot) >= self._refmax:
            return False
        slot.append(address)
        return True

    def merge_refs(
        self, level: int, candidates: Iterable[Address], rng: random.Random
    ) -> None:
        """The paper's ``random_select(refmax, union(...))`` step.

        Union the current references with *candidates*; if the union exceeds
        ``refmax``, keep a uniform random subset of size ``refmax``.
        """
        slot = self._level_slot(level)
        union = list(dict.fromkeys([*slot, *candidates]))
        if len(union) > self._refmax:
            union = rng.sample(union, self._refmax)
        slot.clear()
        slot.extend(union)

    def remove_ref(self, level: int, address: Address) -> bool:
        """Drop *address* from *level*; return whether it was present."""
        if level < 1 or level > len(self._levels):
            return False
        slot = self._levels[level - 1]
        if address not in slot:
            return False
        slot.remove(address)
        return True

    def remove_everywhere(self, address: Address) -> int:
        """Drop *address* from every level; return the number of removals."""
        removed = 0
        for slot in self._levels:
            if address in slot:
                slot.remove(address)
                removed += 1
        return removed

    def truncate(self, depth: int) -> None:
        """Discard levels deeper than *depth* (used when a path shortens)."""
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        del self._levels[depth:]

    def total_refs(self) -> int:
        """Total reference count across levels (storage-cost metric, §4/§6)."""
        return sum(len(slot) for slot in self._levels)

    def iter_levels(self) -> Iterator[tuple[int, list[Address]]]:
        """Yield ``(level, refs)`` pairs for materialized levels, 1-based."""
        for index, slot in enumerate(self._levels, start=1):
            yield index, list(slot)

    def to_lists(self) -> list[list[Address]]:
        """Snapshot form: one list per level."""
        return [list(slot) for slot in self._levels]

    @classmethod
    def from_lists(cls, refmax: int, levels: Iterable[Iterable[Address]]) -> "RoutingTable":
        """Rebuild a table from :meth:`to_lists` output."""
        table = cls(refmax)
        for level, refs in enumerate(levels, start=1):
            table.set_refs(level, refs)
        return table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingTable):
            return NotImplemented
        return self._refmax == other._refmax and self.to_lists() == other.to_lists()

    def __repr__(self) -> str:
        levels = ", ".join(f"L{i}:{refs}" for i, refs in self.iter_levels())
        return f"RoutingTable(refmax={self._refmax}, {levels or 'empty'})"
