"""Data items and the leaf-level index of a peer (paper §2).

Besides its routing references a peer maintains ``D ⊆ ADDR × K`` — for every
indexed key with the peer's path as a prefix, the addresses of the peers that
*store* the corresponding data items.  This module provides:

:class:`DataItem`
    An indexed object: a binary key, an opaque value, and a monotonically
    increasing version (used by the update experiments to distinguish stale
    from fresh replicas of an index entry).
:class:`DataRef`
    One entry of ``D`` — (key, storing peer address, version).
:class:`DataStore`
    A peer's local container for both the items it physically stores and the
    leaf-level index entries it is responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.core import keys as keyspace

Address = int


@dataclass(frozen=True)
class DataItem:
    """An information item: an index key plus an opaque payload."""

    key: str
    value: Any = None

    def __post_init__(self) -> None:
        keyspace.validate_key(self.key)


@dataclass(frozen=True)
class DataRef:
    """One leaf-level index entry: *key* is stored at *holder*.

    ``version`` tracks index-entry freshness for the §5.2 update
    experiments: an update re-publishes the entry with a higher version, and
    a replica is *stale* until the new version reaches it.

    ``deleted`` marks a *tombstone*: retractions propagate exactly like
    updates (a higher-version entry), but lookups skip tombstoned entries.
    Keeping the tombstone (rather than erasing the entry) is what makes
    out-of-order propagation safe — a late-arriving older publish cannot
    resurrect a deleted entry.
    """

    key: str
    holder: Address
    version: int = 0
    deleted: bool = False

    def __post_init__(self) -> None:
        keyspace.validate_key(self.key)
        if self.version < 0:
            raise ValueError(f"version must be >= 0, got {self.version}")

    def tombstone(self) -> "DataRef":
        """The deletion marker superseding this entry (version + 1)."""
        return DataRef(
            key=self.key,
            holder=self.holder,
            version=self.version + 1,
            deleted=True,
        )


class DataStore:
    """Local storage of one peer: stored items + leaf-level index entries.

    The index side is keyed by the item key; multiple holders per key are
    allowed (several peers may store copies of the same file).  Lookups by
    *query* key return every entry whose key is in a prefix relation with the
    query, mirroring the interval semantics of §2.
    """

    def __init__(self) -> None:
        self._items: dict[str, DataItem] = {}
        self._index: dict[str, dict[Address, DataRef]] = {}

    # -- physically stored items -------------------------------------------

    def store_item(self, item: DataItem) -> None:
        """Store *item* locally (overwrites an item with the same key)."""
        self._items[item.key] = item

    def get_item(self, key: str) -> DataItem | None:
        """Return the locally stored item for *key*, or ``None``."""
        return self._items.get(key)

    def iter_items(self) -> Iterator[DataItem]:
        """Iterate over locally stored items."""
        return iter(self._items.values())

    @property
    def item_count(self) -> int:
        """Number of locally stored items."""
        return len(self._items)

    # -- leaf-level index (the peer's slice of D) ---------------------------

    def add_ref(self, ref: DataRef) -> None:
        """Insert or refresh an index entry.

        A newer version for the same (key, holder) pair replaces the stored
        entry; an older or equal version is ignored, making propagation
        idempotent.
        """
        holders = self._index.setdefault(ref.key, {})
        existing = holders.get(ref.holder)
        if existing is None or ref.version > existing.version:
            holders[ref.holder] = ref

    def remove_ref(self, key: str, holder: Address) -> bool:
        """Drop the entry for (key, holder); return whether it existed."""
        holders = self._index.get(key)
        if not holders or holder not in holders:
            return False
        del holders[holder]
        if not holders:
            del self._index[key]
        return True

    def refs_for_key(self, key: str) -> list[DataRef]:
        """Exact-key live entries, sorted by holder for determinism."""
        holders = self._index.get(key, {})
        return sorted(
            (ref for ref in holders.values() if not ref.deleted),
            key=lambda ref: ref.holder,
        )

    def lookup(self, query: str) -> list[DataRef]:
        """Every live entry whose key is in a prefix relation with *query*.

        This implements the peer's answer duty for its interval: a query for
        a short key returns all more specific entries below it, and a query
        for a long key returns entries for any prefix of it.  Tombstoned
        entries are invisible to lookups (but still stored, so stale
        re-publishes cannot resurrect them).
        """
        matches = [
            ref
            for key, holders in self._index.items()
            if keyspace.in_prefix_relation(key, query)
            for ref in holders.values()
            if not ref.deleted
        ]
        matches.sort(key=lambda ref: (ref.key, ref.holder))
        return matches

    def is_deleted(self, key: str, holder: Address) -> bool:
        """Whether the stored entry for (key, holder) is a tombstone."""
        holders = self._index.get(key)
        if not holders or holder not in holders:
            return False
        return holders[holder].deleted

    def iter_refs(self) -> Iterator[DataRef]:
        """Iterate over all index entries (no order guarantee)."""
        for holders in self._index.values():
            yield from holders.values()

    def version_of(self, key: str, holder: Address) -> int | None:
        """Stored version for (key, holder), or ``None`` if absent."""
        holders = self._index.get(key)
        if not holders or holder not in holders:
            return None
        return holders[holder].version

    @property
    def ref_count(self) -> int:
        """Total number of index entries held."""
        return sum(len(holders) for holders in self._index.values())

    def indexed_keys(self) -> list[str]:
        """All distinct keys with at least one index entry, sorted."""
        return sorted(self._index)

    def drop_refs_outside(self, path: str) -> list[DataRef]:
        """Remove and return entries no longer covered by *path*.

        Called when a peer specializes: entries whose key is not in a prefix
        relation with the new path leave the peer's responsibility and must
        be handed over to the exchange partner (paper §3 discusses this data
        hand-over implicitly as part of splitting responsibility).
        """
        dropped: list[DataRef] = []
        for key in list(self._index):
            if not keyspace.in_prefix_relation(key, path):
                dropped.extend(self._index[key].values())
                del self._index[key]
        dropped.sort(key=lambda ref: (ref.key, ref.holder))
        return dropped
