"""Update propagation and read strategies over replicas (paper §3 and §5.2).

An update must reach *all* peers responsible for a key — not just one, as a
search does.  The paper compares three propagation strategies:

1. **Repeated depth-first search** — run the Fig. 2 search several times;
   random reference choice scatters the repetitions over different replicas.
2. **Depth-first + buddies** — every replica reached additionally forwards
   the update to the buddies it learned during construction.
3. **Breadth-first search** — fan out ``recbreadth``-wide at every routing
   level, reaching many replicas in one pass (the clear winner in Fig. 5).

§5.2's second insight is the *repeated-query* trick: instead of paying for
near-complete update coverage, update a modest fraction of replicas and
repeat queries until a fresh replica answers (or take a majority vote) —
trading a small per-query overhead for a drastic insertion-cost reduction
(table 6).  :class:`ReadEngine` implements single, repeated-until-fresh and
majority reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import keys as keyspace
from repro.core.config import UpdateConfig
from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.core.results import ContactAccounting
from repro.core.search import SearchEngine
from repro.core.storage import DataItem, DataRef
from repro.obs.probe import Probe
from repro.protocol import read as protocol_read
from repro.protocol.direct import run_buddies
from repro.protocol.update import UpdateStrategy, discover_replicas

__all__ = ["UpdateStrategy", "UpdateResult", "ReadResult", "UpdateEngine", "ReadEngine"]


@dataclass
class UpdateResult(ContactAccounting):
    """Outcome of one update propagation."""

    key: str
    version: int
    reached: set[Address]
    messages: int
    failed_attempts: int
    replica_count: int

    @property
    def found(self) -> bool:
        """Whether the update reached at least one replica."""
        return bool(self.reached)

    @property
    def coverage(self) -> float:
        """Fraction of existing replicas that received the update."""
        if self.replica_count == 0:
            return 0.0
        return len(self.reached) / self.replica_count


@dataclass
class ReadResult(ContactAccounting):
    """Outcome of one read (query for an index entry)."""

    key: str
    success: bool
    messages: int
    failed_attempts: int
    repetitions: int

    @property
    def found(self) -> bool:
        """Alias of ``success`` (the shared result protocol's name)."""
        return self.success


class UpdateEngine:
    """Propagates index-entry updates through a :class:`PGrid`.

    ``config`` supplies the default ``recbreadth``/``repetition`` for calls
    that do not override them explicitly (experiments sweep them per call;
    applications typically fix them once here).

    ``retry`` / ``healer`` (duck-typed :class:`repro.faults.RetryPolicy` /
    :class:`repro.faults.RefHealer`) are forwarded to the default-built
    search engine and also govern the buddy-forwarding hop: an offline
    buddy is re-contacted per the policy before being counted as missed.
    When an explicit ``search`` engine is supplied it keeps its own
    retry/healer configuration; only the buddy hop uses ``retry`` here.

    ``balancer`` (a :class:`repro.replication.ReplicaBalancer`) is
    offered the replica set each propagation reached — update traffic
    walks the same trie as searches, so the peers it contacts are
    replication opportunities too.  ``None``, or a balancer that never
    fires, changes nothing (no RNG, no state).
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        search: SearchEngine | None = None,
        config: UpdateConfig | None = None,
        probe: Probe | None = None,
        retry=None,
        healer=None,
        balancer=None,
    ) -> None:
        self.grid = grid
        self.search = search or SearchEngine(
            grid, probe=probe, retry=retry, healer=healer
        )
        self.config = config or UpdateConfig()
        self.probe = probe
        self.retry = retry
        self.balancer = balancer

    # -- insertion / update ------------------------------------------------------

    def publish(
        self,
        start: Address,
        item: DataItem,
        holder: Address,
        *,
        strategy: UpdateStrategy = UpdateStrategy.BFS,
        repetition: int | None = None,
        recbreadth: int | None = None,
        version: int = 0,
    ) -> UpdateResult:
        """Insert (or re-publish) the index entry for *item* stored at
        *holder*, starting the propagation search at peer *start*.
        """
        self.grid.peer(holder).store.store_item(item)
        ref = DataRef(key=item.key, holder=holder, version=version)
        return self.propagate(
            start, ref, strategy=strategy, repetition=repetition, recbreadth=recbreadth
        )

    def propagate(
        self,
        start: Address,
        ref: DataRef,
        *,
        strategy: UpdateStrategy = UpdateStrategy.BFS,
        repetition: int | None = None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        """Deliver *ref* to as many responsible peers as the strategy finds.

        Message accounting follows §5.2: every successful contact of another
        peer counts one message (the update rides on the search contact;
        buddy forwards are additional contacts).
        """
        repetition = (
            self.config.repetition if repetition is None else repetition
        )
        recbreadth = (
            self.config.recbreadth if recbreadth is None else recbreadth
        )
        if repetition < 1:
            raise ValueError(f"repetition must be >= 1, got {repetition}")
        keyspace.validate_key(ref.key)
        reached, messages, failed = self._find_replicas(
            start, ref.key, strategy=strategy, repetition=repetition,
            recbreadth=recbreadth,
        )
        for address in reached:
            self.grid.peer(address).store.add_ref(ref)
        if self.balancer is not None and reached:
            self.balancer.after_update(reached)
        if self.probe is not None:
            self.probe.on_update(
                ref.key,
                strategy.value,
                reached=len(reached),
                messages=messages,
                failed_attempts=failed,
            )
        return UpdateResult(
            key=ref.key,
            version=ref.version,
            reached=reached,
            messages=messages,
            failed_attempts=failed,
            replica_count=len(self.grid.replicas_for_key(ref.key)),
        )

    def retract(
        self,
        start: Address,
        key: str,
        holder: Address,
        *,
        version: int,
        strategy: UpdateStrategy = UpdateStrategy.BFS,
        repetition: int | None = None,
        recbreadth: int | None = None,
    ) -> UpdateResult:
        """Delete an index entry by propagating its tombstone.

        The tombstone carries ``version`` (which must supersede the live
        entry's version); replicas that receive it stop answering lookups
        for the (key, holder) pair while keeping the marker so stale
        re-publishes cannot resurrect it.
        """
        tombstone = DataRef(key=key, holder=holder, version=version, deleted=True)
        return self.propagate(
            start,
            tombstone,
            strategy=strategy,
            repetition=repetition,
            recbreadth=recbreadth,
        )

    # -- replica discovery (Fig. 5 measurement core) -------------------------------

    def _find_replicas(
        self,
        start: Address,
        key: str,
        *,
        strategy: UpdateStrategy,
        repetition: int,
        recbreadth: int,
    ) -> tuple[set[Address], int, int]:
        return discover_replicas(
            key,
            strategy=strategy,
            repetition=repetition,
            recbreadth=recbreadth,
            run_query=lambda: self.search.query_from(start, key),
            run_breadth=lambda rb: self.search.query_breadth(start, key, rb),
            forward_to_buddies=self._forward_to_buddies,
        )

    def find_replicas(
        self,
        start: Address,
        key: str,
        *,
        strategy: UpdateStrategy,
        repetition: int | None = None,
        recbreadth: int | None = None,
    ) -> tuple[set[Address], int, int]:
        """Public replica-discovery probe: (reached, messages, failures).

        Used directly by the Fig. 5 experiment, which measures coverage
        without actually writing.
        """
        repetition = (
            self.config.repetition if repetition is None else repetition
        )
        recbreadth = (
            self.config.recbreadth if recbreadth is None else recbreadth
        )
        if repetition < 1:
            raise ValueError(f"repetition must be >= 1, got {repetition}")
        keyspace.validate_key(key)
        return self._find_replicas(
            start, key, strategy=strategy, repetition=repetition,
            recbreadth=recbreadth,
        )

    def _forward_to_buddies(
        self, reached: set[Address], messages: int, failed: int
    ) -> tuple[set[Address], int, int]:
        """Strategy 2's second hop: replicas forward to their buddy lists
        (the :func:`repro.protocol.update.buddy_forward_step` machine,
        driven in-process)."""
        attempts = self.retry.attempts if self.retry is not None else 1
        return run_buddies(self.grid, reached, messages, failed, attempts)


class ReadEngine:
    """Query strategies for reading possibly partially-updated entries.

    ``retry`` / ``healer`` are forwarded to the default-built search
    engine (ignored when an explicit ``search`` is supplied).
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        search: SearchEngine | None = None,
        probe: Probe | None = None,
        retry=None,
        healer=None,
    ) -> None:
        self.grid = grid
        self.search = search or SearchEngine(
            grid, probe=probe, retry=retry, healer=healer
        )
        self.probe = probe

    def _finish(self, result: ReadResult) -> ReadResult:
        if self.probe is not None:
            self.probe.on_read(
                result.key,
                success=result.success,
                messages=result.messages,
                failed_attempts=result.failed_attempts,
                repetitions=result.repetitions,
            )
        return result

    def _responder_is_fresh(
        self, responder: Address, key: str, holder: Address, version: int
    ) -> bool:
        stored = self.grid.peer(responder).store.version_of(key, holder)
        return stored is not None and stored >= version

    def _strategies(self, start: Address, key: str, holder: Address, version: int):
        """The injected callables the sans-I/O read strategies consume."""
        query = lambda: self.search.query_from(start, key)  # noqa: E731
        is_fresh = lambda responder: self._responder_is_fresh(  # noqa: E731
            responder, key, holder, version
        )
        return query, is_fresh

    def read_single(
        self, start: Address, key: str, holder: Address, version: int
    ) -> ReadResult:
        """Non-repetitive search: one Fig. 2 query; success iff the replica
        that answers already holds *version* of the entry (table 6, lower
        half)."""
        query, is_fresh = self._strategies(start, key, holder, version)
        success, messages, failed, repetitions = protocol_read.read_single(
            query, is_fresh
        )
        return self._finish(
            ReadResult(
                key=key,
                success=success,
                messages=messages,
                failed_attempts=failed,
                repetitions=repetitions,
            )
        )

    def read_repeated(
        self,
        start: Address,
        key: str,
        holder: Address,
        version: int,
        *,
        max_repetitions: int = 200,
    ) -> ReadResult:
        """Repetitive search (table 6, upper half): re-query until a fresh
        replica answers, accumulating message cost.

        The paper repeats until success; we bound the loop defensively and
        report failure if the bound is hit (which the experiments never do
        once at least one replica was updated).
        """
        query, is_fresh = self._strategies(start, key, holder, version)
        success, messages, failed, repetitions = protocol_read.read_repeated(
            query, is_fresh, max_repetitions=max_repetitions
        )
        return self._finish(
            ReadResult(
                key=key,
                success=success,
                messages=messages,
                failed_attempts=failed,
                repetitions=repetitions,
            )
        )

    def read_majority(
        self, start: Address, key: str, holder: Address, version: int, *, votes: int = 3
    ) -> ReadResult:
        """Majority read (§5.2 discussion): query *votes* times and succeed
        if strictly more than half of the answering replicas are fresh."""
        query, is_fresh = self._strategies(start, key, holder, version)
        success, messages, failed, repetitions = protocol_read.read_majority(
            query, is_fresh, votes=votes
        )
        return self._finish(
            ReadResult(
                key=key,
                success=success,
                messages=messages,
                failed_attempts=failed,
                repetitions=repetitions,
            )
        )
