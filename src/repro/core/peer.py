"""Peer state (paper §2).

A peer ``a`` maintains the sequence ``(p_1, R_1) ... (p_n, R_n)`` — its
*path* plus one bounded reference set per level — together with the
leaf-level data index ``D`` and (for update strategy 3 of §3) a *buddy list*
of peers known to share its exact path.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import keys as keyspace
from repro.core.routing import RoutingTable
from repro.core.storage import DataStore
from repro.errors import InvalidKeyError

Address = int


class Peer:
    """One participant of the P-Grid network.

    The peer object is pure state; the exchange/search/update engines
    manipulate it.  ``online`` is the peer's *current* availability as
    decided by the active churn model (the paper models availability as a
    probability ``online: P -> [0, 1]``; engines consult the churn model
    rather than this flag when a probabilistic model is in force).
    """

    __slots__ = ("address", "_path", "routing", "store", "buddies", "online")

    def __init__(self, address: Address, refmax: int) -> None:
        self.address = address
        self._path = keyspace.EMPTY_PATH
        self.routing = RoutingTable(refmax)
        self.store = DataStore()
        self.buddies: set[Address] = set()
        self.online = True

    # -- path ----------------------------------------------------------------

    @property
    def path(self) -> str:
        """The binary path the peer is currently responsible for."""
        return self._path

    @property
    def depth(self) -> int:
        """Length of the peer's path."""
        return len(self._path)

    def prefix(self, level: int) -> str:
        """The paper's ``prefix(i, a)`` — first *level* bits of the path."""
        if not 0 <= level <= len(self._path):
            raise IndexError(
                f"prefix level {level} out of range for path {self._path!r}"
            )
        return self._path[:level]

    def extend_path(self, bit: str) -> None:
        """Append one bit to the path (specialization step of Fig. 3).

        Specializing invalidates the buddy list: former buddies now share
        only a proper prefix.
        """
        if bit not in ("0", "1"):
            raise InvalidKeyError(bit)
        self._path += bit
        self.buddies.clear()

    def set_path(self, path: str) -> None:
        """Force the path (snapshot loading / tests); clears buddies."""
        keyspace.validate_key(path)
        self._path = path
        self.buddies.clear()

    def responsible_for(self, query: str) -> bool:
        """True iff the peer's interval covers *query* (prefix relation)."""
        return keyspace.in_prefix_relation(self._path, query)

    # -- buddies ---------------------------------------------------------------

    def add_buddy(self, address: Address) -> None:
        """Record a peer known to hold the same path."""
        if address != self.address:
            self.buddies.add(address)

    def merge_buddies(self, addresses: Iterable[Address]) -> None:
        """Record several buddies at once."""
        for address in addresses:
            self.add_buddy(address)

    # -- storage metrics --------------------------------------------------------

    def index_footprint(self) -> int:
        """Total index entries held: routing refs + leaf refs (§4 metric)."""
        return self.routing.total_refs() + self.store.ref_count

    def __repr__(self) -> str:
        return (
            f"Peer(addr={self.address}, path={self._path!r}, "
            f"refs={self.routing.total_refs()}, buddies={len(self.buddies)})"
        )
