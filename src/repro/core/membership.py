"""Dynamic membership: joins, departures and reference repair.

The paper constructs the grid from a fixed population, but its §6 agenda —
"the structures have to continuously adapt" — needs three primitives a
deployed P-Grid cannot live without:

:meth:`MembershipEngine.join`
    A newcomer bootstraps by exchanging with one known peer, then keeps
    exchanging with peers drawn from the routing references it accumulates
    (a random walk over the trie).  Because the exchange algorithm is the
    *only* mechanism used, a join is just "more of the same protocol" —
    the self-organization property the paper emphasizes.
:meth:`MembershipEngine.leave` / :meth:`MembershipEngine.fail`
    A graceful departure hands the peer's leaf-level index entries to a
    replica (found with the peer's own routing state) before leaving; a
    failure just disappears.  Either way, references held by other peers
    dangle until repaired.
:meth:`MembershipEngine.repair`
    Lazy reference repair: probe the references of a peer, drop dead ones,
    and refill each level by *searching* for the complement prefix the
    level must cover — reusing Fig. 2 as the discovery mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import keys as keyspace
from repro.core.exchange import ExchangeEngine
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.search import SearchEngine
from repro.obs.probe import Probe


@dataclass
class JoinReport:
    """Outcome of one join."""

    address: Address
    exchanges: int
    final_depth: int
    meetings: int


@dataclass
class LeaveReport:
    """Outcome of one graceful departure."""

    address: Address
    handover_target: Address | None
    entries_handed_over: int
    messages: int


@dataclass
class RepairReport:
    """Outcome of one repair pass over a peer's routing table."""

    address: Address
    dead_refs_dropped: int
    refs_added: int
    levels_left_empty: list[int] = field(default_factory=list)
    messages: int = 0


class MembershipEngine:
    """Joins, departures and repair over a live :class:`PGrid`."""

    def __init__(
        self,
        grid: PGrid,
        *,
        exchange: ExchangeEngine | None = None,
        search: SearchEngine | None = None,
        probe: Probe | None = None,
    ) -> None:
        self.grid = grid
        self.exchange = exchange or ExchangeEngine(grid, probe=probe)
        self.search = search or SearchEngine(grid, probe=probe)
        self.probe = probe

    # -- join ---------------------------------------------------------------

    def join(
        self,
        bootstrap: Address,
        *,
        max_meetings: int = 64,
        target_depth: int | None = None,
    ) -> JoinReport:
        """Admit a new peer, bootstrapping through *bootstrap*.

        The newcomer first exchanges with the bootstrap peer, then runs a
        random walk: each further meeting partner is drawn from the
        routing references the newcomer has accumulated so far (falling
        back to the bootstrap's references while its own table is empty).
        The walk stops at *target_depth* (default: the grid's ``maxl``) or
        after *max_meetings*.
        """
        if max_meetings < 1:
            raise ValueError(f"max_meetings must be >= 1, got {max_meetings}")
        depth_goal = (
            target_depth if target_depth is not None else self.grid.config.maxl
        )
        if depth_goal < 0:
            raise ValueError(f"target_depth must be >= 0, got {depth_goal}")
        bootstrap_peer = self.grid.peer(bootstrap)

        newcomer = self.grid.add_peer()
        before = self.exchange.stats.calls
        meetings = 0
        rng = self.grid.rng
        while newcomer.depth < depth_goal and meetings < max_meetings:
            partner = self._walk_partner(newcomer, bootstrap_peer, rng)
            if partner is None:
                break
            if not self.grid.is_online(partner):
                meetings += 1
                continue
            self.exchange.meet(newcomer.address, partner)
            meetings += 1
        if self.probe is not None:
            self.probe.on_join(
                newcomer.address,
                meetings=meetings,
                exchanges=self.exchange.stats.calls - before,
            )
        return JoinReport(
            address=newcomer.address,
            exchanges=self.exchange.stats.calls - before,
            final_depth=newcomer.depth,
            meetings=meetings,
        )

    def _walk_partner(
        self, newcomer: Peer, bootstrap: Peer, rng
    ) -> Address | None:
        """Next meeting partner: own refs > bootstrap refs > bootstrap."""
        candidates = [
            address
            for _level, refs in newcomer.routing.iter_levels()
            for address in refs
            if address != newcomer.address and self.grid.has_peer(address)
        ]
        if not candidates:
            candidates = [
                address
                for _level, refs in bootstrap.routing.iter_levels()
                for address in refs
                if address != newcomer.address and self.grid.has_peer(address)
            ]
        if not candidates:
            if bootstrap.address == newcomer.address:
                return None
            return bootstrap.address
        return rng.choice(candidates)

    # -- departures -------------------------------------------------------------

    def leave(self, address: Address) -> LeaveReport:
        """Graceful departure: hand the leaf index to a replica, then go.

        The departing peer searches for its *own path* (excluding itself as
        responder by searching from itself through its references): the
        responder — another peer responsible for the same region — absorbs
        its index entries.  If no replica is reachable the entries are
        dropped with the peer, as they would be in a real crash.
        """
        peer = self.grid.peer(address)
        entries = list(peer.store.iter_refs())
        target: Address | None = None
        messages = 0

        # Buddies are co-replicas by construction — the cheapest target.
        for buddy in sorted(peer.buddies):
            if self.grid.has_peer(buddy) and self.grid.is_online(buddy):
                target = buddy
                messages += 1
                break

        # Otherwise delegate the search: a peer cannot find its own
        # co-replicas through its own references (a search at a responsible
        # peer terminates immediately at itself), but a *referenced* peer
        # on the other side routes back into the region and may land on a
        # different replica.
        if target is None and entries and peer.path:
            delegates = [
                ref
                for _level, refs in peer.routing.iter_levels()
                for ref in refs
                if self.grid.has_peer(ref)
            ]
            rng = self.grid.rng
            for _ in range(min(4, len(delegates)) or 0):
                delegate = rng.choice(delegates)
                if not self.grid.is_online(delegate):
                    continue
                messages += 1  # the delegation request itself
                result = self.search.query_from(delegate, peer.path)
                messages += result.messages
                if result.found and result.responder not in (None, address):
                    target = result.responder
                    break

        handed = 0
        if target is not None:
            store = self.grid.peer(target).store
            for ref in entries:
                store.add_ref(ref)
                handed += 1
        self.grid.remove_peer(address)
        if self.probe is not None:
            self.probe.on_leave(address, entries_handed_over=handed)
        return LeaveReport(
            address=address,
            handover_target=target,
            entries_handed_over=handed,
            messages=messages,
        )

    def fail(self, address: Address) -> Peer:
        """Crash departure: the peer vanishes, state and all."""
        return self.grid.remove_peer(address)

    # -- repair ------------------------------------------------------------------

    def repair(self, address: Address, *, refill: bool = True) -> RepairReport:
        """Drop dead references of *address* and refill depleted levels.

        Refill uses the search algorithm itself: level ``i`` must reference
        peers under ``prefix(i-1) + complement(bit i)``; a Fig. 2 search
        for that prefix returns exactly such a peer (any responder whose
        path extends the prefix qualifies).  Search messages are counted
        as the repair's cost.
        """
        peer = self.grid.peer(address)
        report = RepairReport(address=address, dead_refs_dropped=0, refs_added=0)
        for level in range(1, peer.depth + 1):
            for ref in peer.routing.refs(level):
                if not self.grid.has_peer(ref):
                    peer.routing.remove_ref(level, ref)
                    report.dead_refs_dropped += 1
            if not refill:
                continue
            missing = peer.routing.refmax - len(peer.routing.refs(level))
            if missing <= 0:
                continue
            target_prefix = peer.prefix(level - 1) + keyspace.complement_bit(
                peer.path[level - 1]
            )
            for _ in range(missing):
                if not self._refill_one(peer, level, target_prefix, report):
                    break  # this level cannot be refilled right now
            if not peer.routing.refs(level):
                report.levels_left_empty.append(level)
        if self.probe is not None:
            self.probe.on_repair(
                address,
                dead_refs_dropped=report.dead_refs_dropped,
                refs_added=report.refs_added,
                messages=report.messages,
            )
        return report

    def _refill_one(
        self, peer: Peer, level: int, target_prefix: str, report: RepairReport
    ) -> bool:
        """Acquire one fresh reference for *level* via search.

        A self-search only works while the level still has a live
        reference to route through; a fully depleted level needs a
        *delegate* — any still-known peer at another level — to run the
        search on the peer's behalf (one extra message).
        """
        if peer.routing.refs(level):
            result = self.search.query_from(peer.address, target_prefix)
            report.messages += result.messages
        else:
            delegates = [
                ref
                for _lvl, refs in peer.routing.iter_levels()
                for ref in refs
                if self.grid.has_peer(ref) and self.grid.is_online(ref)
            ]
            if not delegates:
                return False
            delegate = self.grid.rng.choice(delegates)
            report.messages += 1  # delegation request
            result = self.search.query_from(delegate, target_prefix)
            report.messages += result.messages
        if (
            result.found
            and result.responder is not None
            and result.responder != peer.address
            and self.grid.peer(result.responder).path.startswith(target_prefix)
            and peer.routing.add_ref(level, result.responder)
        ):
            report.refs_added += 1
            return True
        return False

    def repair_all(self, *, refill: bool = True) -> list[RepairReport]:
        """Run :meth:`repair` over every peer (a maintenance sweep)."""
        return [
            self.repair(address, refill=refill)
            for address in self.grid.addresses()
        ]
