"""Query-adaptive shortcut caching (§6: "knowledge on query distribution
... for optimizing P-Grid construction and updates").

The trie routes every query in ``O(log N)`` hops regardless of popularity.
When the query distribution is skewed, a peer can do better: remember which
peer answered a recent query and jump straight there next time.  This is
the standard result-caching optimization (Gnutella-era "query caching",
later formalized in DHT literature as shortcut/fingers-by-demand).

:class:`ShortcutSearchEngine` wraps a :class:`~repro.core.search.SearchEngine`
with a per-initiator LRU cache:

* on a hit, the cached responder is contacted directly (1 message); if it
  is offline or no longer responsible (paths only ever extend, so this
  only happens after membership churn), the entry is dropped and the
  normal search runs;
* on a miss, the Fig. 2 search runs and its responder is cached under the
  query key.

Consistency note: a shortcut only short-circuits *routing*; the answer is
still served from the responsible peer's current store, so staleness
semantics are identical to the plain search.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core import keys as keyspace
from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.core.search import SearchEngine, SearchResult
from repro.obs.probe import Probe


@dataclass
class ShortcutStats:
    """Cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of searches answered via a shortcut."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class ShortcutCache:
    """A bounded LRU map from query key to last-known responder."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, Address] = OrderedDict()

    def get(self, key: str) -> Address | None:
        """Look up *key*, refreshing its LRU position."""
        if key not in self._entries:
            return None
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, responder: Address) -> None:
        """Remember *responder* for *key*, evicting the LRU entry if full."""
        self._entries[key] = responder
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: str) -> None:
        """Drop the entry for *key* if present."""
        self._entries.pop(key, None)

    def invalidate_responder(self, responder: Address) -> int:
        """Drop every entry pointing at *responder*; returns the count.

        Used when a peer's responsibility changes wholesale (replica
        conversion) rather than one query going stale.
        """
        stale = [key for key, value in self._entries.items() if value == responder]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)


class ShortcutSearchEngine:
    """A caching layer over the Fig. 2 search.

    One cache per initiating peer (a deployed node caches locally; a
    shared cache would be a different system).  Caches are created lazily.

    ``probe`` sees one ``on_shortcut`` event per cache decision
    (``hit``/``miss``/``invalidate``) plus the direct contact of a hit as
    an ``on_forward``; cache misses fall through to the wrapped engine,
    which reports its own hop events when it shares the probe (the
    default when no explicit ``search`` is given).
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        search: SearchEngine | None = None,
        capacity: int = 128,
        probe: Probe | None = None,
    ) -> None:
        self.grid = grid
        self.search = search or SearchEngine(grid, probe=probe)
        self.capacity = capacity
        self.probe = probe
        self.stats = ShortcutStats()
        self._caches: dict[Address, ShortcutCache] = {}

    def cache_for(self, address: Address) -> ShortcutCache:
        """The initiator-local cache for *address*."""
        cache = self._caches.get(address)
        if cache is None:
            cache = ShortcutCache(self.capacity)
            self._caches[address] = cache
        return cache

    def invalidate_responder(self, responder: Address) -> int:
        """Drop *responder* from every initiator's cache.

        The :class:`~repro.replication.balancer.ReplicaBalancer` calls
        this (via its conversion listeners) when it converts a peer to a
        different replica group: the peer still exists and is online,
        but it is no longer responsible for the keys cached against it.
        Returns the number of dropped entries, counted as invalidations.
        """
        removed = 0
        for cache in self._caches.values():
            removed += cache.invalidate_responder(responder)
        if removed:
            self.stats.invalidations += removed
        return removed

    def query_from(self, start: Address, query: str) -> SearchResult:
        """Search with shortcut attempt first, Fig. 2 fallback."""
        keyspace.validate_key(query)
        probe = self.probe
        cache = self.cache_for(start)
        cached = cache.get(query)
        if cached is not None:
            result = self._try_shortcut(start, query, cached)
            if result is not None:
                self.stats.hits += 1
                if probe is not None:
                    probe.on_shortcut("hit", start, query)
                    if result.messages:
                        probe.on_forward(start, cached, 0)
                return result
            cache.invalidate(query)
            self.stats.invalidations += 1
            if probe is not None:
                probe.on_shortcut("invalidate", start, query)
        self.stats.misses += 1
        if probe is not None:
            probe.on_shortcut("miss", start, query)
        result = self.search.query_from(start, query)
        if result.found and result.responder is not None:
            cache.put(query, result.responder)
        return result

    def _try_shortcut(
        self, start: Address, query: str, responder: Address
    ) -> SearchResult | None:
        """Contact the cached responder directly; ``None`` if unusable."""
        if not self.grid.has_peer(responder):
            return None
        if not self.grid.is_online(responder):
            return None
        peer = self.grid.peer(responder)
        if not peer.responsible_for(query):
            return None
        return SearchResult(
            query=query,
            start=start,
            found=True,
            responder=responder,
            messages=0 if responder == start else 1,
            failed_attempts=0,
            data_refs=peer.store.lookup(query),
        )
