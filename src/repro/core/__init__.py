"""Core P-Grid library: the paper's primary contribution.

Modules
-------
``keys``
    Binary key space — paths, values, intervals, prefix algebra (§2).
``config``
    Construction / search / update parameter objects.
``peer`` / ``routing`` / ``storage``
    Peer state: path, per-level references, leaf-level index, buddies (§2).
``grid``
    The network container plus structural statistics (§4/§5).
``search``
    Randomized depth-first search (Fig. 2) and the breadth-first variant.
``exchange``
    The randomized construction algorithm (Fig. 3).
``updates``
    Update propagation strategies and read strategies (§3, §5.2).
``results``
    The shared result protocol every engine outcome satisfies.
``analysis``
    Closed-form sizing and reliability analysis (§4).
"""

from repro.core.analysis import (
    GridPlan,
    min_peers_for_replication,
    plan_grid,
    required_key_length,
    search_success_probability,
)
from repro.core.config import (
    PAPER_SECTION51_CONFIG,
    PAPER_SECTION52_CONFIG,
    PGridConfig,
    SearchConfig,
    UpdateConfig,
)
from repro.core.exchange import ExchangeEngine, ExchangeStats
from repro.core.grid import AlwaysOnline, PGrid
from repro.core.membership import (
    JoinReport,
    LeaveReport,
    MembershipEngine,
    RepairReport,
)
from repro.core.peer import Address, Peer
from repro.core.results import ContactAccounting, SearchOutcome
from repro.core.routing import RoutingTable
from repro.core.search import (
    BreadthSearchResult,
    RangeSearchResult,
    SearchEngine,
    SearchResult,
)
from repro.core.shortcuts import (
    ShortcutCache,
    ShortcutSearchEngine,
    ShortcutStats,
)
from repro.core.storage import DataItem, DataRef, DataStore
from repro.core.updates import (
    ReadEngine,
    ReadResult,
    UpdateEngine,
    UpdateResult,
    UpdateStrategy,
)

__all__ = [
    "Address",
    "AlwaysOnline",
    "BreadthSearchResult",
    "ContactAccounting",
    "DataItem",
    "DataRef",
    "DataStore",
    "ExchangeEngine",
    "ExchangeStats",
    "GridPlan",
    "JoinReport",
    "LeaveReport",
    "MembershipEngine",
    "PAPER_SECTION51_CONFIG",
    "PAPER_SECTION52_CONFIG",
    "PGrid",
    "PGridConfig",
    "Peer",
    "RangeSearchResult",
    "ReadEngine",
    "ReadResult",
    "RepairReport",
    "RoutingTable",
    "SearchConfig",
    "SearchEngine",
    "SearchOutcome",
    "SearchResult",
    "ShortcutCache",
    "ShortcutSearchEngine",
    "ShortcutStats",
    "UpdateConfig",
    "UpdateEngine",
    "UpdateResult",
    "UpdateStrategy",
    "min_peers_for_replication",
    "plan_grid",
    "required_key_length",
    "search_success_probability",
]
