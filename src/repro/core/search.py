"""Randomized P-Grid search (paper Fig. 2) and its breadth-first variant.

The routing decisions live in the sans-I/O machines of
:mod:`repro.protocol.search`; this module is their *direct driver*
facade: it validates inputs, wires the grid/probe/retry/healer
collaborators into a :class:`repro.protocol.Context`, executes the
machines in-process via :mod:`repro.protocol.direct` and packages the
tallies into the result dataclasses.  The networked
:class:`repro.net.node.PGridNode` drives the very same machines over
messages, so both execution paths share one implementation of Fig. 2.

Two deviations from the literal pseudo-code, both documented in DESIGN.md:

* the recursive call passes level ``l + length(compath)`` — the paper prints
  ``1 + length(compath)``, which breaks the "level = consumed bits" invariant
  its own variable definitions imply (an off-by-typo, see DESIGN.md §4);
* a configurable message budget guards against unbounded wandering when
  nearly all peers are offline.

Cost accounting matches §5.2: a *message* is a successful ``query`` call to
another peer; contact attempts that hit an offline peer are tallied
separately (``failed_attempts``).

The breadth-first search (``query_breadth``) is the §3/§5.2 update-support
primitive: instead of trying references one by one until a single responsible
peer answers, it forwards to up to ``recbreadth`` references *at every
divergence level in parallel*, collecting the full set of responsible peers
it reaches.

Observability: the engine accepts a keyword-only ``probe``
(:class:`repro.obs.Probe`) and reports every forward, offline miss,
backtrack and termination.  With the default ``probe=None`` the machines
skip event emission entirely; probes must not draw from the grid's RNG
(observation is asserted to be bit-identical to an uninstrumented run).

Resilience: keyword-only ``retry`` (a :class:`repro.faults.RetryPolicy`,
duck-typed so this module stays import-free of ``repro.faults``) re-contacts
an offline reference up to ``attempts`` times before backtracking,
accounting the simulated backoff in ``retry_delay``; ``healer`` (a
:class:`repro.faults.RefHealer`) receives every per-reference contact
outcome and evicts/refills references that keep failing.  Both default to
``None`` — the bare Fig. 2 protocol — and are asserted transparent in that
configuration (``tests/faults/test_transparency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core import keys as keyspace
from repro.core.config import SearchConfig
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.results import ContactAccounting
from repro.core.storage import DataRef
from repro.obs.probe import Probe
from repro.protocol.contact import Budget, Context, StepStats
from repro.protocol.direct import run_breadth, run_dfs
from repro.protocol.search import (
    Traversal,
    key_in_range,
    repeated_queries,
    run_range,
)

__all__ = [
    "SearchResult",
    "RangeSearchResult",
    "BreadthSearchResult",
    "SearchEngine",
]


@dataclass
class SearchResult(ContactAccounting):
    """Outcome of one depth-first search.

    ``latency`` is the simulated end-to-end latency along the contact
    chain; it is populated only when the engine has a topology attached
    (see :mod:`repro.sim.topology`), otherwise 0.
    """

    query: str
    start: Address
    found: bool
    responder: Address | None
    messages: int
    failed_attempts: int
    data_refs: list[DataRef] = field(default_factory=list)
    latency: float = 0.0
    retry_delay: float = 0.0


@dataclass
class RangeSearchResult(ContactAccounting):
    """Outcome of one range query."""

    low: str
    high: str
    cover: list[str]
    responders: list[Address]
    data_refs: list[DataRef]
    messages: int
    failed_attempts: int
    retry_delay: float = 0.0

    @property
    def found(self) -> bool:
        """Whether at least one responsible peer was reached."""
        return bool(self.responders)


@dataclass
class BreadthSearchResult(ContactAccounting):
    """Outcome of one breadth-first (multi-replica) search."""

    query: str
    start: Address
    responders: list[Address]
    messages: int
    failed_attempts: int
    retry_delay: float = 0.0

    @property
    def found(self) -> bool:
        """Whether at least one responsible peer was reached."""
        return bool(self.responders)


class SearchEngine:
    """Executes searches against a :class:`PGrid`.

    ``topology`` is an optional latency model (anything with a
    ``latency(a, b) -> float`` method); when set, results carry the
    simulated end-to-end latency of the contact chain.  It does not
    influence routing here — :class:`repro.sim.topology` provides the
    proximity-aware engine variants that do.

    ``probe`` receives the hop-level observability hooks; ``None`` (the
    default) disables observation entirely.

    ``retry`` / ``healer`` are the resilience collaborators (duck-typed
    :class:`repro.faults.RetryPolicy` / :class:`repro.faults.RefHealer`);
    ``None`` disables them with zero overhead on the hot path.
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        config: SearchConfig | None = None,
        probe: Probe | None = None,
        topology=None,
        retry=None,
        healer=None,
    ) -> None:
        self.grid = grid
        self.config = config or SearchConfig()
        self.probe = probe
        self.topology = topology
        self.retry = retry
        self.healer = healer
        # Subclasses that override _attempt_order (proximity routing)
        # plug it in as the machine's attempt-order hook; the base engine
        # leaves it None to select the machine's inline uniform draws.
        order = (
            None
            if type(self)._attempt_order is SearchEngine._attempt_order
            else self._attempt_order
        )
        self._ctx = Context(
            grid.rng,
            retry=retry,
            healer=healer,
            topology=topology,
            order=order,
            observed=probe is not None,
        )

    def _context(self) -> Context:
        """The machine context, with observation state refreshed."""
        ctx = self._ctx
        ctx.observed = self.probe is not None
        return ctx

    # -- depth-first search (Fig. 2) -------------------------------------------

    def query_from(self, start: Address, query: str) -> SearchResult:
        """Issue *query* at the peer *start* (the paper's ``query(a, p, 0)``).

        The starting peer acts as the requester and is contacted locally
        (no message, no online check — a user searches from their own node).
        """
        keyspace.validate_key(query)
        peer = self.grid.peer(start)
        probe = self.probe
        if probe is not None:
            probe.on_search_start("dfs", start, query)
        budget = Budget(self.config.max_messages)
        stats = StepStats()
        found, responder = run_dfs(
            self.grid, self._context(), probe, peer, query, 0, budget, stats
        )
        data_refs: list[DataRef] = []
        if found and responder is not None:
            data_refs = self.grid.peer(responder).store.lookup(query)
        if probe is not None:
            probe.on_search_end(
                "dfs",
                start,
                query,
                found=found,
                messages=stats.messages,
                failed_attempts=stats.failed,
                latency=stats.latency,
            )
        return SearchResult(
            query=query,
            start=start,
            found=found,
            responder=responder,
            messages=stats.messages,
            failed_attempts=stats.failed,
            data_refs=data_refs,
            latency=stats.latency,
            retry_delay=stats.retry_delay,
        )

    def _attempt_order(
        self, peer: Peer, refs: list[Address]
    ) -> Iterator[Address]:
        """Yield forwarding candidates in attempt order.

        The base engine draws uniformly without replacement — *lazily*,
        so the RNG is consulted only for attempts actually made (this
        preserves the paper's random-reference semantics and keeps the
        RNG stream identical whether or not later candidates are
        needed).  :class:`repro.sim.topology.ProximitySearchEngine`
        overrides this with a nearest-first ordering, which the machine
        context picks up as its attempt-order hook.
        """
        rng = self.grid.rng
        while refs:
            yield refs.pop(rng.randrange(len(refs)))

    # -- repeated depth-first search (§5.2 update strategy 1) ---------------------

    def repeated_query(
        self, start: Address, query: str, times: int
    ) -> tuple[set[Address], int, int]:
        """Run *times* independent searches; return (responders, messages,
        failed attempts).

        Random reference choice makes repetitions land on different
        replicas, which is what update strategy (1) of §3 exploits.
        """
        return repeated_queries(lambda: self.query_from(start, query), times)

    # -- breadth-first search (§3 update strategy 3) -------------------------------

    def query_breadth(
        self,
        start: Address,
        query: str,
        recbreadth: int,
        *,
        enumerate_subtree: bool = False,
    ) -> BreadthSearchResult:
        """Collect responsible peers by fanning out *recbreadth*-wide.

        At each peer the query either terminates (prefix agreement — the
        peer is responsible and is collected) or diverges, in which case up
        to *recbreadth* randomly chosen references at the divergence level
        are all followed.  Every reached responsible peer additionally
        contributes its *buddies*' responsibility transitively through the
        returned set only if they were contacted (buddy forwarding is a
        separate strategy implemented in :mod:`repro.core.updates`).

        With *enumerate_subtree*, a responsible peer whose path extends
        past the query additionally forwards into its references at every
        level *below* the match — those references cover the sibling
        subtrees under the query prefix, so the walk visits every leaf
        region of the queried interval (used by range queries, where the
        cover prefixes are much shorter than peer paths).
        """
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        keyspace.validate_key(query)
        probe = self.probe
        if probe is not None:
            probe.on_search_start("bfs", start, query)
        trav = Traversal(
            Budget(self.config.max_messages),
            StepStats(),
            recbreadth,
            enumerate_subtree=enumerate_subtree,
        )
        run_breadth(
            self.grid, self._context(), probe, self.grid.peer(start), query, 0, trav
        )
        stats = trav.stats
        if probe is not None:
            probe.on_search_end(
                "bfs",
                start,
                query,
                found=bool(trav.responders),
                messages=stats.messages,
                failed_attempts=stats.failed,
            )
        return BreadthSearchResult(
            query=query,
            start=start,
            responders=trav.responders,
            messages=stats.messages,
            failed_attempts=stats.failed,
            retry_delay=stats.retry_delay,
        )

    # -- range queries over the order-preserving key space ------------------------

    def query_range(
        self, start: Address, low: str, high: str, *, recbreadth: int = 2
    ) -> RangeSearchResult:
        """Find index entries with keys in ``[low, high]`` (equal lengths).

        P-Grid keys are order-preserving (``val(k)`` intervals, §2), so a
        range decomposes into the canonical cover prefixes
        (:func:`repro.core.keys.range_cover`); each cover prefix is then
        resolved with a breadth-first search and the responders' leaf
        entries are filtered to the range.  Duplicate entries returned by
        several replicas are deduplicated.

        The probe sees one ``range`` search wrapping the per-prefix
        ``bfs`` sub-searches (nested start/end events).
        """
        cover = keyspace.range_cover(low, high)
        probe = self.probe
        if probe is not None:
            probe.on_search_start("range", start, f"{low}..{high}")
        responders, data_refs, messages, failed, retry_delay = run_range(
            low,
            high,
            cover=cover,
            search=lambda prefix: self.query_breadth(
                start, prefix, recbreadth, enumerate_subtree=True
            ),
            fetch=lambda responder, prefix: self.grid.peer(
                responder
            ).store.lookup(prefix),
        )
        if probe is not None:
            probe.on_search_end(
                "range",
                start,
                f"{low}..{high}",
                found=bool(responders),
                messages=messages,
                failed_attempts=failed,
            )
        return RangeSearchResult(
            low=low,
            high=high,
            cover=cover,
            responders=responders,
            data_refs=data_refs,
            messages=messages,
            failed_attempts=failed,
            retry_delay=retry_delay,
        )

    @staticmethod
    def _key_in_range(key: str, low: str, high: str) -> bool:
        """Whether *key*'s interval intersects the ``[low, high]`` range
        (delegates to :func:`repro.protocol.search.key_in_range`)."""
        return key_in_range(key, low, high)
