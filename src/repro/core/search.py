"""Randomized P-Grid search (paper Fig. 2) and its breadth-first variant.

The depth-first algorithm follows the paper's pseudo-code: at peer ``a`` with
query suffix ``p`` after ``l`` consumed bits, compare ``p`` against the
remaining path; on full prefix agreement the local peer is responsible,
otherwise forward the unmatched suffix to a randomly chosen reference at the
divergence level, trying alternative references (backtracking) while
forwards fail.

Two deviations from the literal pseudo-code, both documented in DESIGN.md:

* the recursive call passes level ``l + length(compath)`` — the paper prints
  ``1 + length(compath)``, which breaks the "level = consumed bits" invariant
  its own variable definitions imply (an off-by-typo, see DESIGN.md §4);
* a configurable message budget guards against unbounded wandering when
  nearly all peers are offline.

Cost accounting matches §5.2: a *message* is a successful ``query`` call to
another peer; contact attempts that hit an offline peer are tallied
separately (``failed_attempts``).

The breadth-first search (``query_breadth``) is the §3/§5.2 update-support
primitive: instead of trying references one by one until a single responsible
peer answers, it forwards to up to ``recbreadth`` references *at every
divergence level in parallel*, collecting the full set of responsible peers
it reaches.

Observability: the engine accepts a keyword-only ``probe``
(:class:`repro.obs.Probe`) and reports every forward, offline miss,
backtrack and termination.  With the default ``probe=None`` the hooks cost
one identity check each; probes must not draw from the grid's RNG
(observation is asserted to be bit-identical to an uninstrumented run).

Resilience: keyword-only ``retry`` (a :class:`repro.faults.RetryPolicy`,
duck-typed so this module stays import-free of ``repro.faults``) re-contacts
an offline reference up to ``attempts`` times before backtracking,
accounting the simulated backoff in ``retry_delay``; ``healer`` (a
:class:`repro.faults.RefHealer`) receives every per-reference contact
outcome and evicts/refills references that keep failing.  Both default to
``None`` — the bare Fig. 2 protocol — and are asserted transparent in that
configuration (``tests/faults/test_transparency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core import keys as keyspace
from repro.core.config import SearchConfig
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.results import ContactAccounting
from repro.core.storage import DataRef
from repro.obs.probe import Probe


@dataclass
class SearchResult(ContactAccounting):
    """Outcome of one depth-first search.

    ``latency`` is the simulated end-to-end latency along the contact
    chain; it is populated only when the engine has a topology attached
    (see :mod:`repro.sim.topology`), otherwise 0.
    """

    query: str
    start: Address
    found: bool
    responder: Address | None
    messages: int
    failed_attempts: int
    data_refs: list[DataRef] = field(default_factory=list)
    latency: float = 0.0
    retry_delay: float = 0.0


@dataclass
class RangeSearchResult(ContactAccounting):
    """Outcome of one range query."""

    low: str
    high: str
    cover: list[str]
    responders: list[Address]
    data_refs: list[DataRef]
    messages: int
    failed_attempts: int
    retry_delay: float = 0.0

    @property
    def found(self) -> bool:
        """Whether at least one responsible peer was reached."""
        return bool(self.responders)


@dataclass
class BreadthSearchResult(ContactAccounting):
    """Outcome of one breadth-first (multi-replica) search."""

    query: str
    start: Address
    responders: list[Address]
    messages: int
    failed_attempts: int
    retry_delay: float = 0.0

    @property
    def found(self) -> bool:
        """Whether at least one responsible peer was reached."""
        return bool(self.responders)


class _Budget:
    """Mutable message budget shared across a recursive search."""

    __slots__ = ("remaining",)

    def __init__(self, limit: int) -> None:
        self.remaining = limit

    def consume(self) -> bool:
        """Take one message from the budget; False when exhausted."""
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class SearchEngine:
    """Executes searches against a :class:`PGrid`.

    ``topology`` is an optional latency model (anything with a
    ``latency(a, b) -> float`` method); when set, results carry the
    simulated end-to-end latency of the contact chain.  It does not
    influence routing here — :class:`repro.sim.topology` provides the
    proximity-aware engine variants that do.

    ``probe`` receives the hop-level observability hooks; ``None`` (the
    default) disables observation entirely.

    ``retry`` / ``healer`` are the resilience collaborators (duck-typed
    :class:`repro.faults.RetryPolicy` / :class:`repro.faults.RefHealer`);
    ``None`` disables them with zero overhead on the hot path.
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        config: SearchConfig | None = None,
        probe: Probe | None = None,
        topology=None,
        retry=None,
        healer=None,
    ) -> None:
        self.grid = grid
        self.config = config or SearchConfig()
        self.probe = probe
        self.topology = topology
        self.retry = retry
        self.healer = healer
        # True when this instance uses the base attempt order, letting
        # _query skip the generator machinery on the uninstrumented path.
        self._inline_order = (
            type(self)._attempt_order is SearchEngine._attempt_order
        )
        # Retry/healer handling lives on the slow path only.
        self._resilient = retry is not None or healer is not None

    # -- depth-first search (Fig. 2) -------------------------------------------

    def query_from(self, start: Address, query: str) -> SearchResult:
        """Issue *query* at the peer *start* (the paper's ``query(a, p, 0)``).

        The starting peer acts as the requester and is contacted locally
        (no message, no online check — a user searches from their own node).
        """
        keyspace.validate_key(query)
        peer = self.grid.peer(start)
        probe = self.probe
        if probe is not None:
            probe.on_search_start("dfs", start, query)
        budget = _Budget(self.config.max_messages)
        stats: dict[str, float] = {
            "messages": 0,
            "failed": 0,
            "latency": 0.0,
            "retry_delay": 0.0,
        }
        found, responder = self._query(peer, query, 0, budget, stats)
        data_refs: list[DataRef] = []
        if found and responder is not None:
            data_refs = self.grid.peer(responder).store.lookup(query)
        if probe is not None:
            probe.on_search_end(
                "dfs",
                start,
                query,
                found=found,
                messages=int(stats["messages"]),
                failed_attempts=int(stats["failed"]),
                latency=stats["latency"],
            )
        return SearchResult(
            query=query,
            start=start,
            found=found,
            responder=responder,
            messages=int(stats["messages"]),
            failed_attempts=int(stats["failed"]),
            data_refs=data_refs,
            latency=stats["latency"],
            retry_delay=stats["retry_delay"],
        )

    def _attempt_order(
        self, peer: Peer, refs: list[Address]
    ) -> Iterator[Address]:
        """Yield forwarding candidates in attempt order.

        The base engine draws uniformly without replacement — *lazily*,
        so the RNG is consulted only for attempts actually made (this
        preserves the paper's random-reference semantics and keeps the
        RNG stream identical whether or not later candidates are
        needed).  :class:`repro.sim.topology.ProximitySearchEngine`
        overrides this with a nearest-first ordering.
        """
        rng = self.grid.rng
        while refs:
            yield refs.pop(rng.randrange(len(refs)))

    def _query(
        self,
        peer: Peer,
        p: str,
        level: int,
        budget: _Budget,
        stats: dict[str, float],
    ) -> tuple[bool, Address | None]:
        """Recursive body of Fig. 2; *level* = bits of ``path(peer)`` consumed."""
        probe = self.probe
        rempath = peer.path[level:]
        compath = keyspace.common_prefix(p, rempath)
        lc = len(compath)
        if lc == len(p) or lc == len(rempath):
            if probe is not None:
                probe.on_responsible(peer.address, level + lc)
            return True, peer.address
        # Divergence: forward the unmatched suffix sideways.
        querypath = p[lc:]
        ref_level = level + lc + 1
        refs = list(peer.routing.refs(ref_level))
        if probe is None and self._inline_order and not self._resilient:
            # Uninstrumented fast path: the same lazy draws as
            # _attempt_order without a generator frame per hop.  The
            # probe-transparency property test pins both paths to
            # identical results and RNG streams.
            grid = self.grid
            rng = grid.rng
            while refs:
                address = refs.pop(rng.randrange(len(refs)))
                if not grid.has_peer(address) or not grid.is_online(address):
                    stats["failed"] += 1
                    continue
                if not budget.consume():
                    return False, None
                stats["messages"] += 1
                if self.topology is not None:
                    stats["latency"] += self.topology.latency(
                        peer.address, address
                    )
                found, responder = self._query(
                    grid.peer(address), querypath, level + lc, budget, stats
                )
                if found:
                    return True, responder
            return False, None
        for address in self._attempt_order(peer, refs):
            if not self._contact(peer.address, address, ref_level, stats):
                continue
            if not budget.consume():
                return False, None
            stats["messages"] += 1
            if probe is not None:
                probe.on_forward(peer.address, address, ref_level)
            if self.topology is not None:
                stats["latency"] += self.topology.latency(peer.address, address)
            found, responder = self._query(
                self.grid.peer(address), querypath, level + lc, budget, stats
            )
            if found:
                return True, responder
            if probe is not None:
                probe.on_backtrack(peer.address, ref_level)
        return False, None

    def _contact(
        self,
        owner: Address,
        address: Address,
        ref_level: int,
        stats: dict[str, float],
    ) -> bool:
        """One per-reference contact attempt, with retry and healing.

        Returns whether *address* answered.  A dangling reference (departed
        peer) fails once without retry — re-contacting a peer that no
        longer exists cannot help; an offline reference is re-contacted up
        to ``retry.attempts`` times (each an independent availability coin
        under the §2 model), accruing the backoff schedule in
        ``stats["retry_delay"]`` and respecting the policy's deadline.
        Every outcome is reported to the healer, which may evict the
        reference mid-retry (the loop then stops — the slot no longer
        exists).
        """
        grid = self.grid
        probe = self.probe
        healer = self.healer
        if not grid.has_peer(address):
            # A dangling reference (departed peer) behaves like an offline
            # one: the contact attempt fails.
            stats["failed"] += 1
            if probe is not None:
                probe.on_offline_miss(owner, address, ref_level)
            if healer is not None:
                healer.record_failure(owner, ref_level, address)
            return False
        retry = self.retry
        attempts = retry.attempts if retry is not None else 1
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                delay = retry.delay_before(attempt)
                if (
                    retry.deadline is not None
                    and stats["retry_delay"] + delay > retry.deadline
                ):
                    break
                stats["retry_delay"] += delay
            if grid.is_online(address):
                if healer is not None:
                    healer.record_success(owner, ref_level, address)
                return True
            stats["failed"] += 1
            if probe is not None:
                probe.on_offline_miss(owner, address, ref_level)
            if healer is not None and healer.record_failure(
                owner, ref_level, address
            ):
                break
        return False

    # -- repeated depth-first search (§5.2 update strategy 1) ---------------------

    def repeated_query(
        self, start: Address, query: str, times: int
    ) -> tuple[set[Address], int, int]:
        """Run *times* independent searches; return (responders, messages,
        failed attempts).

        Random reference choice makes repetitions land on different
        replicas, which is what update strategy (1) of §3 exploits.
        """
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        responders: set[Address] = set()
        messages = 0
        failed = 0
        for _ in range(times):
            result = self.query_from(start, query)
            messages += result.messages
            failed += result.failed_attempts
            if result.found and result.responder is not None:
                responders.add(result.responder)
        return responders, messages, failed

    # -- breadth-first search (§3 update strategy 3) -------------------------------

    def query_breadth(
        self,
        start: Address,
        query: str,
        recbreadth: int,
        *,
        enumerate_subtree: bool = False,
    ) -> BreadthSearchResult:
        """Collect responsible peers by fanning out *recbreadth*-wide.

        At each peer the query either terminates (prefix agreement — the
        peer is responsible and is collected) or diverges, in which case up
        to *recbreadth* randomly chosen references at the divergence level
        are all followed.  Every reached responsible peer additionally
        contributes its *buddies*' responsibility transitively through the
        returned set only if they were contacted (buddy forwarding is a
        separate strategy implemented in :mod:`repro.core.updates`).

        With *enumerate_subtree*, a responsible peer whose path extends
        past the query additionally forwards into its references at every
        level *below* the match — those references cover the sibling
        subtrees under the query prefix, so the walk visits every leaf
        region of the queried interval (used by range queries, where the
        cover prefixes are much shorter than peer paths).
        """
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        keyspace.validate_key(query)
        probe = self.probe
        if probe is not None:
            probe.on_search_start("bfs", start, query)
        budget = _Budget(self.config.max_messages)
        stats: dict[str, float] = {"messages": 0, "failed": 0, "retry_delay": 0.0}
        responders: list[Address] = []
        seen: set[Address] = set()
        self._breadth(
            self.grid.peer(start),
            query,
            0,
            recbreadth,
            budget,
            stats,
            responders,
            seen,
            enumerate_subtree,
        )
        if probe is not None:
            probe.on_search_end(
                "bfs",
                start,
                query,
                found=bool(responders),
                messages=int(stats["messages"]),
                failed_attempts=int(stats["failed"]),
            )
        return BreadthSearchResult(
            query=query,
            start=start,
            responders=responders,
            messages=int(stats["messages"]),
            failed_attempts=int(stats["failed"]),
            retry_delay=stats["retry_delay"],
        )

    # -- range queries over the order-preserving key space ------------------------

    def query_range(
        self, start: Address, low: str, high: str, *, recbreadth: int = 2
    ) -> RangeSearchResult:
        """Find index entries with keys in ``[low, high]`` (equal lengths).

        P-Grid keys are order-preserving (``val(k)`` intervals, §2), so a
        range decomposes into the canonical cover prefixes
        (:func:`repro.core.keys.range_cover`); each cover prefix is then
        resolved with a breadth-first search and the responders' leaf
        entries are filtered to the range.  Duplicate entries returned by
        several replicas are deduplicated.

        The probe sees one ``range`` search wrapping the per-prefix
        ``bfs`` sub-searches (nested start/end events).
        """
        cover = keyspace.range_cover(low, high)
        probe = self.probe
        if probe is not None:
            probe.on_search_start("range", start, f"{low}..{high}")
        responders: list[Address] = []
        seen_responders: set[Address] = set()
        refs: dict[tuple[str, Address], DataRef] = {}
        messages = 0
        failed = 0
        retry_delay = 0.0
        for prefix in cover:
            result = self.query_breadth(
                start, prefix, recbreadth, enumerate_subtree=True
            )
            messages += result.messages
            failed += result.failed_attempts
            retry_delay += result.retry_delay
            for responder in result.responders:
                if responder not in seen_responders:
                    seen_responders.add(responder)
                    responders.append(responder)
                for ref in self.grid.peer(responder).store.lookup(prefix):
                    if self._key_in_range(ref.key, low, high):
                        key = (ref.key, ref.holder)
                        existing = refs.get(key)
                        if existing is None or ref.version > existing.version:
                            refs[key] = ref
        data_refs = sorted(refs.values(), key=lambda r: (r.key, r.holder))
        if probe is not None:
            probe.on_search_end(
                "range",
                start,
                f"{low}..{high}",
                found=bool(responders),
                messages=messages,
                failed_attempts=failed,
            )
        return RangeSearchResult(
            low=low,
            high=high,
            cover=cover,
            responders=responders,
            data_refs=data_refs,
            messages=messages,
            failed_attempts=failed,
            retry_delay=retry_delay,
        )

    @staticmethod
    def _key_in_range(key: str, low: str, high: str) -> bool:
        """Whether *key*'s interval intersects the ``[low, high]`` range.

        Entries may be indexed under keys longer or shorter than the range
        bounds; compare by padding to the bound length (a shorter key
        covers the whole subtree, so it matches if any leaf under it
        does).
        """
        width = len(low)
        if len(key) >= width:
            truncated = key[:width]
            return low <= truncated <= high
        first = key + "0" * (width - len(key))
        last = key + "1" * (width - len(key))
        return not (last < low or first > high)

    def _breadth(
        self,
        peer: Peer,
        p: str,
        level: int,
        recbreadth: int,
        budget: _Budget,
        stats: dict[str, float],
        responders: list[Address],
        seen: set[Address],
        enumerate_subtree: bool = False,
    ) -> None:
        if peer.address in seen:
            return
        seen.add(peer.address)
        rempath = peer.path[level:]
        compath = keyspace.common_prefix(p, rempath)
        lc = len(compath)
        if lc == len(p) or lc == len(rempath):
            responders.append(peer.address)
            if self.probe is not None:
                self.probe.on_responsible(peer.address, level + lc)
            if enumerate_subtree and lc == len(p):
                # The peer's path extends past the query: its references at
                # every level below the match point into the *other* halves
                # of the query's subtree.  Forwarding the empty remaining
                # query there enumerates all leaf regions of the interval.
                for sublevel in range(level + lc + 1, peer.depth + 1):
                    self._fan_out(
                        peer, "", sublevel, sublevel, recbreadth,
                        budget, stats, responders, seen, enumerate_subtree,
                    )
            return
        self._fan_out(
            peer, p[lc:], level + lc, level + lc + 1, recbreadth,
            budget, stats, responders, seen, enumerate_subtree,
        )

    def _fan_out(
        self,
        peer: Peer,
        querypath: str,
        next_level: int,
        ref_level: int,
        recbreadth: int,
        budget: _Budget,
        stats: dict[str, float],
        responders: list[Address],
        seen: set[Address],
        enumerate_subtree: bool,
    ) -> None:
        """Forward to up to *recbreadth* online references at *ref_level*.

        Offline contacts are skipped and replaced by further candidates
        (the depth-first search retries the same way, one at a time),
        after any configured retry attempts.
        """
        probe = self.probe
        refs = list(peer.routing.refs(ref_level))
        rng = self.grid.rng
        rng.shuffle(refs)
        forwarded = 0
        for address in refs:
            if forwarded >= recbreadth:
                break
            if address in seen:
                continue
            if not self._contact(peer.address, address, ref_level, stats):
                continue
            if not budget.consume():
                return
            stats["messages"] += 1
            if probe is not None:
                probe.on_forward(peer.address, address, ref_level)
            forwarded += 1
            self._breadth(
                self.grid.peer(address),
                querypath,
                next_level,
                recbreadth,
                budget,
                stats,
                responders,
                seen,
                enumerate_subtree,
            )
