"""Configuration objects for P-Grid construction and search.

The paper's free parameters (§3–§5):

``maxl``
    Maximum path length a peer may specialize to.  Bounds the trie depth and
    therefore controls the replication factor at the leaves.
``refmax``
    Maximum number of routing references kept per level ("multiplicity of
    references", §4) — more references make search robust to offline peers.
``recmax``
    Maximum recursion depth of the ``exchange`` algorithm (case 4).  §5.1
    table 3 finds the optimum near 2.
``recursion_fanout``
    The paper's fix for the exponential blow-up of table 4: during a
    recursive case-4 step only this many randomly chosen referenced peers are
    forwarded to.  ``None`` reproduces the unbounded behaviour of table 4;
    ``2`` reproduces table 5.

Two switches expose design alternatives the paper discusses but does not
adopt (used by the ablation benchmarks):

``mutual_refs_in_case4``
    In case 4 the two peers have a common prefix and complementary next bits,
    so they are valid references for each other; the paper only *forwards*
    them to referenced peers.  Enabling this also inserts them into each
    other's routing tables.
``exchange_refs_all_levels``
    The paper exchanges references only at the deepest shared level ``lc``;
    enabling this exchanges at every level ``1..lc``.
``split_min_items``
    Data-driven specialization (§3's hint: "one possible indication that a
    path has reached maxl could be that the number of data items belonging
    to the key is falling below a certain threshold").  When set, a peer
    only specializes further while it is responsible for at least this
    many index entries; ``maxl`` remains a hard safety bound.  This makes
    the trie depth adapt to the data distribution — the §6 skewed-data
    future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import InvalidConfigError


@dataclass(frozen=True)
class PGridConfig:
    """Parameters of the P-Grid construction algorithm (paper Fig. 3)."""

    maxl: int = 6
    refmax: int = 1
    recmax: int = 2
    recursion_fanout: int | None = None
    mutual_refs_in_case4: bool = False
    exchange_refs_all_levels: bool = False
    split_min_items: int | None = None

    def __post_init__(self) -> None:
        if self.maxl < 1:
            raise InvalidConfigError(f"maxl must be >= 1, got {self.maxl}")
        if self.refmax < 1:
            raise InvalidConfigError(f"refmax must be >= 1, got {self.refmax}")
        if self.recmax < 0:
            raise InvalidConfigError(f"recmax must be >= 0, got {self.recmax}")
        if self.recursion_fanout is not None and self.recursion_fanout < 1:
            raise InvalidConfigError(
                f"recursion_fanout must be >= 1 or None, got {self.recursion_fanout}"
            )
        if self.split_min_items is not None and self.split_min_items < 1:
            raise InvalidConfigError(
                f"split_min_items must be >= 1 or None, got {self.split_min_items}"
            )

    def with_overrides(self, **changes: Any) -> "PGridConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by snapshots and experiment records."""
        return {
            "maxl": self.maxl,
            "refmax": self.refmax,
            "recmax": self.recmax,
            "recursion_fanout": self.recursion_fanout,
            "mutual_refs_in_case4": self.mutual_refs_in_case4,
            "exchange_refs_all_levels": self.exchange_refs_all_levels,
            "split_min_items": self.split_min_items,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PGridConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise InvalidConfigError(f"unknown config keys: {sorted(unknown)}")
        return cls(**dict(data))


#: Configuration of the paper's §5.2 experiments (Fig. 4, Fig. 5, table 6):
#: 20 000 peers, keys of maximal length 10, 20 references per level,
#: recursion bound 2 with fan-out bound 2 (the fixed variant).
PAPER_SECTION52_CONFIG = PGridConfig(
    maxl=10, refmax=20, recmax=2, recursion_fanout=2
)

#: Configuration of the §5.1 construction-cost tables (before sweeps).
PAPER_SECTION51_CONFIG = PGridConfig(maxl=6, refmax=1, recmax=2)


@dataclass(frozen=True)
class SearchConfig:
    """Parameters of search execution (paper Fig. 2 plus §5.2 variants).

    ``max_messages`` bounds a single depth-first search, guarding against
    pathological routing states (the paper's algorithm can in principle
    revisit long chains when most peers are offline).
    """

    max_messages: int = 10_000

    def __post_init__(self) -> None:
        if self.max_messages < 1:
            raise InvalidConfigError(
                f"max_messages must be >= 1, got {self.max_messages}"
            )


@dataclass(frozen=True)
class UpdateConfig:
    """Parameters of update propagation (paper §5.2).

    ``recbreadth``
        Number of references followed per level by the breadth-first update
        search.
    ``repetition``
        Number of times the propagation search is repeated per update.
    """

    recbreadth: int = 2
    repetition: int = 1

    def __post_init__(self) -> None:
        if self.recbreadth < 1:
            raise InvalidConfigError(
                f"recbreadth must be >= 1, got {self.recbreadth}"
            )
        if self.repetition < 1:
            raise InvalidConfigError(
                f"repetition must be >= 1, got {self.repetition}"
            )
