"""Serve an async swarm over real sockets (the multi-process story).

:class:`SwarmServer` exposes the peers of one :class:`AsyncSwarm` on a
TCP endpoint using the :mod:`repro.net.wire` framing: each inbound frame
is one protocol :class:`~repro.net.message.Message`, injected through
the swarm's transport (so mailboxes, fault plans and traffic accounting
all apply), and the reply travels back as one frame on the same
connection.  A process hosting a slice of the keyspace and a process
holding none of it look identical on the wire — which is what lets a
swarm span processes or hosts.

The client side is two small helpers: :func:`remote_request` (one
framed request/response over a fresh connection) and
:func:`remote_search` (issue a Fig. 2 query to a remote node and read
the outcome off the response payload).
"""

from __future__ import annotations

import asyncio

from repro.core.peer import Address
from repro.core.storage import DataRef
from repro.errors import NoHandlerError, PeerOfflineError, TransportError
from repro.net import wire
from repro.net.message import Message, MessageKind, pong, query_message
from repro.net.node import NodeSearchOutcome

from repro.aio.swarm import AsyncSwarm

__all__ = ["SwarmServer", "remote_request", "remote_search"]


class SwarmServer:
    """TCP front door for one (started) :class:`AsyncSwarm`."""

    def __init__(self, swarm: AsyncSwarm, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.swarm = swarm
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "SwarmServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    message = await wire.read_message(reader)
                except wire.WireFormatError:
                    break  # protocol violation: drop the connection
                if message is None:  # clean EOF
                    break
                reply = await self._dispatch(message)
                await wire.write_message(writer, reply)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, message: Message) -> Message:
        """Inject one remote message through the swarm's transport.

        Delivery failures become PONG-framed error payloads rather than
        dropped connections: the remote caller learns *why* (offline,
        dropped, unknown peer) and can retry at its own policy.
        """
        try:
            reply = await self.swarm.transport.request(message)
        except NoHandlerError:
            return _error_reply(message, "no-such-peer")
        except PeerOfflineError:
            return _error_reply(message, "offline")
        except TransportError:
            return _error_reply(message, "dropped")
        if reply is None:
            return pong(message)
        return reply


def _error_reply(request: Message, reason: str) -> Message:
    return Message(
        kind=MessageKind.PONG,
        source=request.destination,
        destination=request.source,
        payload={"error": reason},
        in_reply_to=request.message_id,
    )


async def remote_request(host: str, port: int, message: Message) -> Message:
    """One framed request/response round-trip over a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await wire.write_message(writer, message)
        reply = await wire.read_message(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if reply is None:
        raise TransportError(f"connection to {host}:{port} closed before reply")
    return reply


async def remote_search(
    host: str, port: int, start: Address, key: str, *, client: Address = -1
) -> NodeSearchOutcome:
    """Issue a Fig. 2 search at remote node *start*; decode the outcome.

    *client* is the source address stamped on the wire (it need not name
    a peer — replies route back over the connection, not the overlay).
    """
    reply = await remote_request(
        host, port, query_message(client, start, key, 0)
    )
    if reply.kind is not MessageKind.QUERY_RESPONSE:
        raise TransportError(
            f"remote search failed: {reply.payload.get('error', reply.kind.value)}"
        )
    payload = reply.payload
    refs = [
        DataRef(key=r["key"], holder=r["holder"], version=r["version"])
        for r in payload.get("refs", [])
    ]
    return NodeSearchOutcome(
        query=key,
        found=payload["found"],
        responder=payload["responder"],
        messages_sent=payload.get("messages", 0),
        failed_attempts=payload.get("failed", 0),
        retry_delay=payload.get("retry_delay", 0.0),
        data_refs=refs,
    )
