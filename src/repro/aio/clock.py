"""Event-loop clocks: how simulated delays map onto ``await``.

The protocol accounts time on a *simulated* clock (retry backoff,
latency models — ``TrafficStats.simulated_time``).  The async runtime
must decide what a simulated delay means for the event loop:

* :class:`VirtualClock` (the default) accrues the delay in its own
  tally and yields control once (``asyncio.sleep(0)``) — experiments
  run at full speed and stay deterministic, yet every ``await`` point
  still exists, so concurrency interleavings are exercised;
* :class:`RealtimeClock` actually sleeps ``delay * scale`` wall
  seconds, mapping :class:`~repro.faults.RetryPolicy` backoff and
  latency models onto the loop clock for soak/latency testing.

Both keep the cumulative total in :attr:`elapsed`, so reports can state
how much simulated waiting a run contained regardless of the mapping.
"""

from __future__ import annotations

import asyncio

__all__ = ["RealtimeClock", "VirtualClock"]


class VirtualClock:
    """Zero-wall-time clock: delays are accounted, never slept."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    async def sleep(self, delay: float) -> None:
        """Account *delay* and yield to the event loop once."""
        if delay > 0:
            self.elapsed += delay
        await asyncio.sleep(0)


class RealtimeClock:
    """Wall-clock mapping: one simulated time unit = *scale* seconds."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.scale = scale
        self.elapsed = 0.0

    async def sleep(self, delay: float) -> None:
        """Sleep ``delay * scale`` wall seconds on the event loop."""
        if delay <= 0:
            await asyncio.sleep(0)
            return
        self.elapsed += delay
        await asyncio.sleep(delay * self.scale)
