"""Async transport: bounded per-node mailboxes over an event loop.

:class:`AsyncTransport` is the asyncio counterpart of
:class:`~repro.net.transport.LocalTransport`.  Delivery semantics are
identical — the same failure order (missing handler, offline oracle,
loss coin, latency sample), the same :class:`TrafficStats` counters, the
same dedicated transport RNG stream — but delivery is a real enqueue:

* every registered address owns one bounded :class:`asyncio.Queue`
  (its *mailbox*); a full mailbox makes ``await request(...)`` block,
  which is the backpressure that keeps a hot node from being buried;
* one worker task per mailbox dequeues messages and spawns a handler
  task per message, so a node can serve many requests concurrently —
  in particular the re-entrant chains the recursive protocol produces
  (node A queries B, whose subtree queries A back) cannot deadlock;
* mailbox depth and queue latency are tallied per node
  (:class:`MailboxStats`) and streamed to the observability layer via
  :meth:`repro.obs.probe.Probe.on_mailbox`.

Fault plans plug in through :meth:`install_faults`: the same
:class:`~repro.faults.FaultInjector` used by the sync stack runs its
pre-delivery gate (crash, drop coin) and post-delivery faults (latency,
crash coin, stale refs) around each request, drawing from the same
derived streams in the same order — a plan behaves identically on
either substrate.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.errors import (
    InvalidConfigError,
    NoHandlerError,
    PeerOfflineError,
    TransportError,
)
from repro.net.message import Message, MessageKind
from repro.net.transport import LatencyModel, TrafficStats
from repro.obs.probe import Probe
from repro.sim import rng as rngmod

from repro.aio.clock import VirtualClock

__all__ = ["AsyncHandler", "AsyncTransport", "MailboxStats"]

AsyncHandler = Callable[[Message], Awaitable[Message | None]]


@dataclass
class MailboxStats:
    """Depth/latency tallies for one node's mailbox."""

    enqueued: int = 0
    handled: int = 0
    max_depth: int = 0
    total_wait: float = 0.0
    max_wait: float = 0.0

    def snapshot(self) -> dict[str, object]:
        """Plain-dict copy for experiment records."""
        return {
            "enqueued": self.enqueued,
            "handled": self.handled,
            "max_depth": self.max_depth,
            "total_wait": self.total_wait,
            "max_wait": self.max_wait,
        }


class AsyncTransport:
    """Mailbox-based asyncio transport over a :class:`PGrid` population."""

    def __init__(
        self,
        grid: PGrid,
        *,
        mailbox_size: int = 64,
        loss_probability: float = 0.0,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        seed: int | None = None,
        probe: Probe | None = None,
        clock=None,
    ) -> None:
        if mailbox_size < 1:
            raise ValueError(f"mailbox_size must be >= 1, got {mailbox_size}")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.grid = grid
        self.mailbox_size = mailbox_size
        self.loss_probability = loss_probability
        self.latency = latency
        # Same stance as LocalTransport: transport noise draws from its own
        # stream, never the grid's protocol RNG.
        if rng is not None:
            self._rng: random.Random | None = rng
        elif seed is not None:
            self._rng = rngmod.derive(seed, "transport")
        else:
            self._rng = None
        if loss_probability > 0.0 and self._rng is None:
            raise InvalidConfigError(
                "loss_probability > 0 requires an explicit rng= or seed= "
                "(the transport never draws from the grid's protocol RNG)"
            )
        self.probe = probe
        self.clock = clock if clock is not None else VirtualClock()
        self.stats = TrafficStats()
        self.mailbox_stats: dict[Address, MailboxStats] = {}
        self._handlers: dict[Address, AsyncHandler] = {}
        self._mailboxes: dict[
            Address, asyncio.Queue[tuple[Message, asyncio.Future, float]]
        ] = {}
        self._workers: dict[Address, asyncio.Task] = {}
        self._tasks: set[asyncio.Task] = set()
        self._faults = None
        self._started = False

    # -- registration / lifecycle ---------------------------------------------------

    def register(self, address: Address, handler: AsyncHandler) -> None:
        """Attach the async message handler (and mailbox) for *address*."""
        if not self.grid.has_peer(address):
            raise InvalidConfigError(
                f"cannot register a handler for {address!r}: "
                "no such peer in the grid"
            )
        if address in self._handlers:
            raise TransportError(f"handler already registered for {address}")
        self._handlers[address] = handler
        self._mailboxes[address] = asyncio.Queue(maxsize=self.mailbox_size)
        self.mailbox_stats[address] = MailboxStats()
        if self._started:
            self._workers[address] = asyncio.ensure_future(self._serve(address))

    def unregister(self, address: Address) -> None:
        """Detach the handler for *address* (peer leaves the network)."""
        self._handlers.pop(address, None)
        self._mailboxes.pop(address, None)
        worker = self._workers.pop(address, None)
        if worker is not None:
            worker.cancel()

    def is_reachable(self, address: Address) -> bool:
        """Registered and currently online."""
        return address in self._handlers and self.grid.is_online(address)

    async def start(self) -> None:
        """Spawn one worker task per registered mailbox."""
        if self._started:
            return
        self._started = True
        for address in self._handlers:
            self._workers[address] = asyncio.ensure_future(self._serve(address))

    async def stop(self) -> None:
        """Cancel workers and in-flight handler tasks."""
        self._started = False
        pending = list(self._workers.values()) + list(self._tasks)
        self._workers.clear()
        self._tasks.clear()
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def install_faults(self, plan, *, probe: Probe | None = None):
        """Wire a :class:`~repro.faults.FaultPlan` into this transport.

        Builds the standard :class:`~repro.faults.FaultInjector` over this
        transport (it only needs ``grid``/``stats``), installs its
        composed availability oracle on the grid, and runs its
        pre/post-delivery gates around every :meth:`request`.  Returns
        the injector so callers can crash/restart peers or read
        ``fault_stats``.
        """
        from repro.faults.inject import FaultInjector

        injector = FaultInjector(self, plan, probe=probe)
        injector.install_oracle()
        self._faults = injector
        return injector

    @property
    def faults(self):
        """The installed :class:`~repro.faults.FaultInjector`, if any."""
        return self._faults

    # -- delivery -------------------------------------------------------------------

    async def request(self, message: Message) -> Message | None:
        """Deliver *message* to its destination's mailbox; await the reply.

        Failure order matches :meth:`LocalTransport.send` exactly
        (missing handler, offline oracle, loss coin, latency sample), so
        protocol machines observe the same ``ContactStatus`` either way.
        A full destination mailbox blocks here — backpressure on the
        caller, not silent loss.
        """
        faults = self._faults
        if faults is not None:
            faults.precheck(message)
        probe = self.probe
        queue = self._mailboxes.get(message.destination)
        if queue is None:
            raise NoHandlerError(message.destination)
        if not self.grid.is_online(message.destination):
            self.stats.offline_failures += 1
            if probe is not None:
                probe.on_transport(
                    message.kind.value, message.source, message.destination, "offline"
                )
            raise PeerOfflineError(message.destination)
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.stats.dropped += 1
            if probe is not None:
                probe.on_transport(
                    message.kind.value, message.source, message.destination, "dropped"
                )
            raise TransportError(
                f"message {message.message_id} to {message.destination} lost"
            )
        if self.latency is not None:
            delay = self.latency.sample(message)
            self.stats.simulated_time += delay
            await self.clock.sleep(delay)
        self.stats.delivered[message.kind] += 1
        if probe is not None:
            probe.on_transport(
                message.kind.value, message.source, message.destination, "delivered"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        await queue.put((message, future, loop.time()))
        box = self.mailbox_stats[message.destination]
        box.enqueued += 1
        depth = queue.qsize()
        if depth > box.max_depth:
            box.max_depth = depth
        if probe is not None:
            probe.on_mailbox("enqueue", message.destination, depth=depth)
        reply = await future
        if faults is not None:
            extra = faults.postcheck(message)
            if extra:
                await self.clock.sleep(extra)
        return reply

    async def try_request(self, message: Message) -> Message | None:
        """Like :meth:`request` but returns ``None`` on offline/lost."""
        try:
            return await self.request(message)
        except (PeerOfflineError, TransportError):
            return None

    async def _serve(self, address: Address) -> None:
        """Mailbox worker: dequeue and spawn one handler task per message.

        Spawning (rather than handling inline) is load-bearing: the
        recursive protocol produces re-entrant chains — while node A
        awaits B's reply, B's subtree may contact A — and a
        one-at-a-time worker would deadlock on them.
        """
        queue = self._mailboxes[address]
        box = self.mailbox_stats[address]
        handler = self._handlers[address]
        probe = self.probe
        loop = asyncio.get_running_loop()
        while True:
            message, future, enqueued_at = await queue.get()
            wait = loop.time() - enqueued_at
            box.handled += 1
            box.total_wait += wait
            if wait > box.max_wait:
                box.max_wait = wait
            if probe is not None:
                probe.on_mailbox("dequeue", address, depth=queue.qsize(), wait=wait)
            task = asyncio.ensure_future(self._handle(handler, message, future))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    @staticmethod
    async def _handle(handler: AsyncHandler, message: Message, future: asyncio.Future) -> None:
        try:
            reply = await handler(message)
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except Exception as exc:  # propagate to the awaiting requester
            if not future.done():
                future.set_exception(exc)
        else:
            if not future.done():
                future.set_result(reply)

    # -- reporting ------------------------------------------------------------------

    def count(self, kind: MessageKind) -> int:
        """Delivered messages of one kind."""
        return self.stats.delivered[kind]

    def max_mailbox_depth(self) -> int:
        """Largest mailbox depth observed across all nodes."""
        return max((s.max_depth for s in self.mailbox_stats.values()), default=0)

    def mailbox_snapshot(self) -> dict[str, object]:
        """Aggregate mailbox tallies for experiment records."""
        stats = list(self.mailbox_stats.values())
        handled = sum(s.handled for s in stats)
        total_wait = sum(s.total_wait for s in stats)
        return {
            "enqueued": sum(s.enqueued for s in stats),
            "handled": handled,
            "max_depth": self.max_mailbox_depth(),
            "mean_wait": (total_wait / handled) if handled else 0.0,
            "max_wait": max((s.max_wait for s in stats), default=0.0),
        }
