"""Whole-population async runtime: many nodes, one event loop.

:class:`AsyncSwarm` owns an :class:`~repro.aio.transport.AsyncTransport`
plus one :class:`~repro.aio.node.AsyncPGridNode` per peer of a built
grid, and drives mixed query/update workloads against them with bounded
concurrency.  This is what ``pgrid swarm`` and the 1k-node smoke test
run: a sustained stream of operations issued from random nodes, checked
against the grid's ground truth, with mailbox depth and queue latency
reported alongside the protocol's message accounting.

The workload scheduler draws from its *own* derived stream
(``swarm-workload``), never the grid RNG: which operations run — like
transport noise — must not perturb the protocol's randomness.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.core.config import SearchConfig
from repro.core.grid import PGrid
from repro.core.peer import Address
from repro.core.storage import DataItem, DataRef
from repro.core.updates import UpdateResult
from repro.net.node import NodeSearchOutcome
from repro.obs.probe import Probe
from repro.sim import rng as rngmod

from repro.aio.node import AsyncPGridNode, attach_async_nodes
from repro.aio.transport import AsyncTransport

__all__ = ["AsyncSwarm", "SwarmReport", "seed_items"]


def seed_items(grid: PGrid, *, items_per_peer: int = 1, seed: int = 0) -> list[str]:
    """Seed a consistent index: random maxl-bit keys, one batch per peer.

    Returns the sorted distinct keys, ready to be drawn by
    :meth:`AsyncSwarm.run_workload`.  Key generation uses a derived
    stream, so the catalogue is a pure function of *seed*.
    """
    if items_per_peer < 1:
        raise ValueError(f"items_per_peer must be >= 1, got {items_per_peer}")
    rng = rngmod.derive(seed, "swarm-items")
    maxl = grid.config.maxl
    items: list[tuple[DataItem, Address]] = []
    for peer in grid.peers():
        for i in range(items_per_peer):
            key = "".join(rng.choice("01") for _ in range(maxl))
            items.append(
                (DataItem(key=key, value=f"item-{peer.address}-{i}"), peer.address)
            )
    grid.seed_index(items)
    return sorted({item.key for item, _ in items})


@dataclass
class SwarmReport:
    """Outcome of one :meth:`AsyncSwarm.run_workload` run."""

    peers: int
    operations: int
    searches: int = 0
    updates: int = 0
    found: int = 0
    update_failures: int = 0
    messages_delivered: int = 0
    dropped: int = 0
    offline_failures: int = 0
    simulated_time: float = 0.0
    wall_seconds: float = 0.0
    max_mailbox_depth: int = 0
    mean_queue_wait: float = 0.0
    max_queue_wait: float = 0.0
    errors: list[str] = field(default_factory=list)

    @property
    def found_rate(self) -> float:
        """Fraction of searches that located a responsible replica."""
        return self.found / self.searches if self.searches else 1.0

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.wall_seconds if self.wall_seconds else 0.0

    def snapshot(self) -> dict[str, object]:
        """Plain-dict copy for experiment records / CLI JSON."""
        return {
            "peers": self.peers,
            "operations": self.operations,
            "searches": self.searches,
            "updates": self.updates,
            "found": self.found,
            "found_rate": self.found_rate,
            "update_failures": self.update_failures,
            "messages_delivered": self.messages_delivered,
            "dropped": self.dropped,
            "offline_failures": self.offline_failures,
            "simulated_time": self.simulated_time,
            "wall_seconds": self.wall_seconds,
            "ops_per_second": self.ops_per_second,
            "max_mailbox_depth": self.max_mailbox_depth,
            "mean_queue_wait": self.mean_queue_wait,
            "max_queue_wait": self.max_queue_wait,
            "errors": list(self.errors),
        }


class AsyncSwarm:
    """One event loop serving every peer of *grid* as an async node.

    Use as an async context manager (or call :meth:`start` / :meth:`stop`
    explicitly); operations may be issued concurrently once started.
    """

    def __init__(
        self,
        grid: PGrid,
        *,
        transport: AsyncTransport | None = None,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
        probe: Probe | None = None,
        mailbox_size: int = 64,
        clock=None,
    ) -> None:
        self.grid = grid
        self.transport = transport if transport is not None else AsyncTransport(
            grid, mailbox_size=mailbox_size, probe=probe, clock=clock
        )
        self.nodes: dict[Address, AsyncPGridNode] = attach_async_nodes(
            grid, self.transport, retry=retry, healer=healer, config=config
        )

    async def start(self) -> None:
        await self.transport.start()

    async def stop(self) -> None:
        await self.transport.stop()

    async def __aenter__(self) -> "AsyncSwarm":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- single operations ----------------------------------------------------------

    async def search(self, start: Address, key: str) -> NodeSearchOutcome:
        """One Fig. 2 search issued from node *start*."""
        return await self.nodes[start].search(key)

    async def update(
        self, start: Address, ref: DataRef, *, recbreadth: int = 2
    ) -> UpdateResult:
        """Publish *ref* from node *start* via breadth-first propagation."""
        return await self.nodes[start].publish(ref, recbreadth=recbreadth)

    # -- sustained mixed workload -----------------------------------------------------

    async def run_workload(
        self,
        *,
        operations: int,
        keys: list[str],
        update_fraction: float = 0.1,
        concurrency: int = 32,
        recbreadth: int = 2,
        seed: int = 0,
    ) -> SwarmReport:
        """Drive *operations* mixed searches/updates with bounded concurrency.

        Each operation picks a start node and a key from the scheduler's
        derived stream; an update re-publishes the key with a bumped
        version from a random holder among its current replicas.  Returns
        a :class:`SwarmReport` with protocol and mailbox accounting.
        """
        if operations < 1:
            raise ValueError(f"operations must be >= 1, got {operations}")
        if not keys:
            raise ValueError("run_workload needs a non-empty key catalogue")
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError(
                f"update_fraction must be in [0, 1], got {update_fraction}"
            )
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        rng = rngmod.derive(seed, "swarm-workload")
        addresses = self.grid.addresses()
        versions: dict[str, int] = {}
        report = SwarmReport(peers=len(addresses), operations=operations)
        gate = asyncio.Semaphore(concurrency)

        async def one(start: Address, key: str, ref: DataRef | None) -> None:
            async with gate:
                try:
                    if ref is None:
                        outcome = await self.search(start, key)
                        report.searches += 1
                        if outcome.found:
                            report.found += 1
                    else:
                        result = await self.update(start, ref, recbreadth=recbreadth)
                        report.updates += 1
                        if not result.reached:
                            report.update_failures += 1
                except Exception as exc:  # surface, don't sink the gather
                    report.errors.append(f"op({start}, {key}): {exc!r}")

        # The whole schedule (start node, key, kind, update holder) is drawn
        # up front, so it is a pure function of the seed regardless of how
        # the operations later interleave on the loop.
        tasks = []
        for _ in range(operations):
            start = rng.choice(addresses)
            key = rng.choice(keys)
            if rng.random() < update_fraction:
                versions[key] = versions.get(key, 0) + 1
                holder = rng.choice(addresses)
                ref = DataRef(key=key, holder=holder, version=versions[key])
                tasks.append(one(start, key, ref))
            else:
                tasks.append(one(start, key, None))
        began = time.perf_counter()
        await asyncio.gather(*[asyncio.ensure_future(t) for t in tasks])
        report.wall_seconds = time.perf_counter() - began

        stats = self.transport.stats
        report.messages_delivered = stats.total_delivered()
        report.dropped = stats.dropped
        report.offline_failures = stats.offline_failures
        report.simulated_time = stats.simulated_time
        box = self.transport.mailbox_snapshot()
        report.max_mailbox_depth = int(box["max_depth"])
        report.mean_queue_wait = float(box["mean_wait"])
        report.max_queue_wait = float(box["max_wait"])
        return report
