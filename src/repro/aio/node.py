"""Async message-driven P-Grid node: the protocol machines' third driver.

:class:`AsyncPGridNode` is :class:`~repro.net.node.PGridNode` with the
transport hop awaited instead of called: the *same* sans-I/O machines
(:mod:`repro.protocol`) run unchanged, driven by
:func:`repro.protocol.driver.drive_async`, and each
:class:`~repro.protocol.Contact` effect becomes one
``await transport.request(...)`` — an enqueue into the destination's
bounded mailbox plus an awaited reply future.  Error mapping is
identical to the sync node (:class:`~repro.errors.NoHandlerError` →
``GONE``; offline / dropped → ``OFFLINE``), and a retry's simulated
backoff is both accrued on the transport clock and awaited on the event
loop via the transport's :mod:`~repro.aio.clock`, so
:class:`~repro.faults.RetryPolicy` deadlines mean the same thing here.

Determinism: every routing/retry decision draws from the grid RNG inside
the machines, in the same order as the engines and the sync node — so a
*sequential* workload over this driver is bit-identical to both (the
three-way equivalence suite).  Under *concurrent* load the draws
interleave per-operation; each operation still routes correctly (the
machines are reorder-tolerant by construction: they never share mutable
state across operations), which is what the swarm smoke test checks
against ground truth.
"""

from __future__ import annotations

from repro.core import keys as keyspace
from repro.core.config import SearchConfig
from repro.core.grid import PGrid
from repro.core.peer import Address, Peer
from repro.core.search import BreadthSearchResult, RangeSearchResult
from repro.core.storage import DataRef
from repro.core.updates import UpdateResult
from repro.errors import NoHandlerError, PeerOfflineError, TransportError
from repro.net.message import (
    Message,
    MessageKind,
    breadth_message,
    breadth_response,
    pong,
    propagate_ack,
    propagate_message,
    query_message,
    query_response,
    update_message,
)
from repro.net.node import NodeSearchOutcome
from repro.protocol.contact import Budget, Context, StepStats
from repro.protocol.driver import drive_async
from repro.protocol.effects import GONE, OFFLINE, OK, Contact, Resolve
from repro.protocol.search import (
    Traversal,
    breadth_step,
    dfs_step,
    repeated_queries,
    run_range,
)

from repro.aio.transport import AsyncTransport

__all__ = ["AsyncPGridNode", "attach_async_nodes"]


class AsyncPGridNode:
    """One networked peer served as asyncio tasks over an async transport.

    Construction registers the node's async :meth:`handle` (and thereby
    its mailbox) on *transport*; ``retry`` / ``healer`` / ``config`` have
    exactly the :class:`~repro.net.node.PGridNode` semantics.
    """

    def __init__(
        self,
        peer: Peer,
        grid: PGrid,
        transport: AsyncTransport,
        *,
        retry=None,
        healer=None,
        config: SearchConfig | None = None,
    ) -> None:
        self.peer = peer
        self.grid = grid
        self.transport = transport
        self.retry = retry
        self.config = config or SearchConfig()
        self._ctx = Context(grid.rng, retry=retry, healer=healer)
        transport.register(peer.address, self.handle)

    # -- effect execution ---------------------------------------------------------

    async def _drive(self, gen, budget: Budget, stats: StepStats, build, resolve):
        """Run one machine, answering effects over the async transport.

        Same contract as the sync node's driver loop, expressed through
        :func:`repro.protocol.driver.drive_async`: *build* turns a
        :class:`Contact` effect into the wire message, *resolve* merges
        the pending reply into the operation state.
        """
        pending: Message | None = None

        async def execute(effect):
            nonlocal pending
            cls = type(effect)
            if cls is Contact:
                status, pending = await self._contact(effect, budget, stats, build)
                return status
            if cls is Resolve:
                return resolve(pending)
            raise TypeError(f"unexpected effect for the async driver: {effect!r}")

        return await drive_async(gen, execute)

    async def _contact(self, effect: Contact, budget: Budget, stats: StepStats, build):
        """One contact attempt over the transport -> (status, reply)."""
        if effect.delay:
            # Retry backoff: accrue simulated time (as the sync node does)
            # AND spend it on the event-loop clock, so a RetryPolicy
            # deadline maps onto real waiting under a realtime clock.
            self.transport.stats.simulated_time += effect.delay
            await self.transport.clock.sleep(effect.delay)
        if budget.remaining <= 0:
            # Budget spent: the machine stops right after this liveness
            # check — answer it locally without paying for a message.
            if not self.grid.has_peer(effect.target):
                return GONE, None
            return (OK if self.grid.is_online(effect.target) else OFFLINE), None
        message = build(effect)
        try:
            reply = await self.transport.request(message)
        except NoHandlerError:
            return GONE, None
        except PeerOfflineError:
            return OFFLINE, None
        except TransportError:  # dropped by the loss model / fault plan
            return OFFLINE, None
        if reply is None:
            return OFFLINE, None
        return OK, reply

    @staticmethod
    def _merge_costs(payload: dict, budget: Budget, stats: StepStats) -> None:
        """Fold a reply's subtree deltas into the local operation state."""
        stats.messages += payload.get("messages", 0)
        stats.failed += payload.get("failed", 0)
        stats.retry_delay = payload.get("retry_delay", stats.retry_delay)
        budget.remaining = payload.get("budget", budget.remaining)

    # -- Fig. 2 depth-first search over messages -----------------------------------

    async def _run_dfs(self, query: str, level: int, budget: Budget, stats: StepStats):
        """Drive the shared Fig. 2 machine; returns (found, responder, refs)."""
        captured: dict[str, list[dict]] = {}

        def build(effect: Contact) -> Message:
            step = effect.payload
            return query_message(
                self.peer.address,
                effect.target,
                step.query,
                step.level,
                budget=budget.remaining - 1,
                retry_spent=stats.retry_delay,
            )

        def resolve(reply: Message):
            payload = reply.payload
            self._merge_costs(payload, budget, stats)
            found = payload["found"]
            if found:
                captured["refs"] = payload.get("refs", [])
            return found, payload["responder"]

        found, responder = await self._drive(
            dfs_step(self.peer, query, level, self._ctx, budget, stats),
            budget,
            stats,
            build,
            resolve,
        )
        return found, responder, captured.get("refs")

    async def _handle_query(self, message: Message) -> Message:
        payload = message.payload
        query = payload["query"]
        level = payload["level"]
        budget = Budget(payload.get("budget", self.config.max_messages))
        stats = StepStats()
        stats.retry_delay = payload.get("retry_spent", 0.0)
        found, responder, refs = await self._run_dfs(query, level, budget, stats)
        if found and refs is None and responder == self.peer.address:
            # Routing consumed the first `level` bits of the original query;
            # they equal this peer's path prefix (search invariant), so the
            # full key for the leaf lookup is prefix + suffix.
            full_query = self.peer.path[:level] + query
            refs = [
                {"key": ref.key, "holder": ref.holder, "version": ref.version}
                for ref in self.peer.store.lookup(full_query)
            ]
        return query_response(
            message,
            found=found,
            responder=responder,
            refs=refs or [],
            messages=stats.messages,
            failed=stats.failed,
            retry_delay=stats.retry_delay,
            budget=budget.remaining,
        )

    # -- breadth-first walks over messages (update / breadth / range) ---------------

    async def _run_breadth(
        self,
        query: str,
        level: int,
        trav: Traversal,
        *,
        collect: str | None = None,
        ref: DataRef | None = None,
    ) -> dict[Address, list[dict]]:
        """Drive the shared breadth machine at this hop (see sync node)."""
        budget, stats = trav.budget, trav.stats
        entries: dict[Address, list[dict]] = {}

        def build(effect: Contact) -> Message:
            step = effect.payload
            seen = sorted(trav.seen)
            if ref is not None:
                return propagate_message(
                    self.peer.address,
                    effect.target,
                    key=ref.key,
                    holder=ref.holder,
                    version=ref.version,
                    deleted=ref.deleted,
                    query=step.query,
                    level=step.level,
                    recbreadth=step.recbreadth,
                    seen=seen,
                    budget=budget.remaining - 1,
                    retry_spent=stats.retry_delay,
                )
            return breadth_message(
                self.peer.address,
                effect.target,
                query=step.query,
                level=step.level,
                recbreadth=step.recbreadth,
                enumerate_subtree=step.enumerate_subtree,
                seen=seen,
                budget=budget.remaining - 1,
                retry_spent=stats.retry_delay,
                collect=collect,
            )

        def resolve(reply: Message):
            payload = reply.payload
            self._merge_costs(payload, budget, stats)
            trav.seen.update(payload.get("seen", ()))
            trav.responders.extend(
                payload.get("responders", payload.get("reached", []))
            )
            for responder, found in payload.get("entries", {}).items():
                entries.setdefault(responder, []).extend(found)
            return None

        await self._drive(
            breadth_step(self.peer, query, level, self._ctx, trav),
            budget,
            stats,
            build,
            resolve,
        )
        # The machine appends this hop's own address first iff responsible.
        if trav.responders and trav.responders[0] == self.peer.address:
            if ref is not None:
                self.peer.store.add_ref(ref)
            if collect is not None:
                entries[self.peer.address] = [
                    {
                        "key": r.key,
                        "holder": r.holder,
                        "version": r.version,
                        "deleted": r.deleted,
                    }
                    for r in self.peer.store.lookup(collect)
                ]
        return entries

    def _traversal_from(self, payload: dict, *, enumerate_subtree: bool) -> Traversal:
        """Reconstruct the walk state a breadth-family message carries."""
        trav = Traversal(
            Budget(payload.get("budget", self.config.max_messages)),
            StepStats(),
            payload["recbreadth"],
            enumerate_subtree=enumerate_subtree,
            seen=set(payload.get("seen", ())),
        )
        trav.stats.retry_delay = payload.get("retry_spent", 0.0)
        return trav

    async def _handle_breadth(self, message: Message) -> Message:
        payload = message.payload
        trav = self._traversal_from(
            payload, enumerate_subtree=payload.get("enumerate_subtree", False)
        )
        entries = await self._run_breadth(
            payload["query"], payload["level"], trav, collect=payload.get("collect")
        )
        return breadth_response(
            message,
            responders=list(trav.responders),
            seen=sorted(trav.seen),
            messages=trav.stats.messages,
            failed=trav.stats.failed,
            retry_delay=trav.stats.retry_delay,
            budget=trav.budget.remaining,
            entries=entries if message.kind is MessageKind.RANGE_QUERY else None,
        )

    async def _handle_propagate(self, message: Message) -> Message:
        payload = message.payload
        ref = DataRef(
            key=payload["key"],
            holder=payload["holder"],
            version=payload["version"],
            deleted=payload["deleted"],
        )
        trav = self._traversal_from(payload, enumerate_subtree=False)
        await self._run_breadth(payload["query"], payload["level"], trav, ref=ref)
        return propagate_ack(
            message,
            trav.responders,
            seen=sorted(trav.seen),
            messages=trav.stats.messages,
            failed=trav.stats.failed,
            retry_delay=trav.stats.retry_delay,
            budget=trav.budget.remaining,
        )

    # -- message dispatch ---------------------------------------------------------

    async def handle(self, message: Message) -> Message | None:
        """Transport entry point (runs as its own task per message)."""
        kind = message.kind
        if kind is MessageKind.QUERY:
            return await self._handle_query(message)
        if kind is MessageKind.BREADTH_QUERY or kind is MessageKind.RANGE_QUERY:
            return await self._handle_breadth(message)
        if kind is MessageKind.PROPAGATE:
            return await self._handle_propagate(message)
        if kind is MessageKind.UPDATE:
            return self._handle_update(message)
        if kind is MessageKind.PING:
            return pong(message)
        return None

    # -- local API (what the user of this node awaits) ------------------------------

    async def search(self, query: str) -> NodeSearchOutcome:
        """Search issued by this node's user (starts locally, no message)."""
        keyspace.validate_key(query)
        budget = Budget(self.config.max_messages)
        stats = StepStats()
        found, responder, refs = await self._run_dfs(query, 0, budget, stats)
        if found and refs is None and responder == self.peer.address:
            refs = [
                {"key": ref.key, "holder": ref.holder, "version": ref.version}
                for ref in self.peer.store.lookup(query)
            ]
        data_refs = [
            DataRef(key=r["key"], holder=r["holder"], version=r["version"])
            for r in (refs or [])
        ]
        return NodeSearchOutcome(
            query=query,
            found=found,
            responder=responder,
            messages_sent=stats.messages,
            failed_attempts=stats.failed,
            retry_delay=stats.retry_delay,
            data_refs=data_refs,
        )

    async def search_repeated(
        self, query: str, times: int
    ) -> tuple[set[Address], int, int]:
        """§5.2 update strategy 1 over messages: *times* independent
        searches; returns (responders, messages, failed attempts)."""
        results = [await self.search(query) for _ in range(times)]
        return repeated_queries(iter(results).__next__, times)

    async def search_breadth(
        self, query: str, recbreadth: int, *, enumerate_subtree: bool = False
    ) -> BreadthSearchResult:
        """Breadth-first search over BREADTH_QUERY messages (§3 strategy 3)."""
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        keyspace.validate_key(query)
        trav = Traversal(
            Budget(self.config.max_messages),
            StepStats(),
            recbreadth,
            enumerate_subtree=enumerate_subtree,
        )
        await self._run_breadth(query, 0, trav)
        return BreadthSearchResult(
            query=query,
            start=self.peer.address,
            responders=list(trav.responders),
            messages=trav.stats.messages,
            failed_attempts=trav.stats.failed,
            retry_delay=trav.stats.retry_delay,
        )

    async def range_search(
        self, low: str, high: str, *, recbreadth: int = 2
    ) -> RangeSearchResult:
        """Range query over RANGE_QUERY messages (see the sync node)."""
        cover = keyspace.range_cover(low, high)
        collected: dict[str, dict[Address, list[DataRef]]] = {}
        sweeps: dict[str, BreadthSearchResult] = {}

        for prefix in cover:
            trav = Traversal(
                Budget(self.config.max_messages),
                StepStats(),
                recbreadth,
                enumerate_subtree=True,
            )
            entries = await self._run_breadth(prefix, 0, trav, collect=prefix)
            collected[prefix] = {
                responder: [
                    DataRef(
                        key=e["key"],
                        holder=e["holder"],
                        version=e["version"],
                        deleted=e.get("deleted", False),
                    )
                    for e in found
                ]
                for responder, found in entries.items()
            }
            sweeps[prefix] = BreadthSearchResult(
                query=prefix,
                start=self.peer.address,
                responders=list(trav.responders),
                messages=trav.stats.messages,
                failed_attempts=trav.stats.failed,
                retry_delay=trav.stats.retry_delay,
            )

        responders, data_refs, messages, failed, retry_delay = run_range(
            low,
            high,
            cover=cover,
            search=lambda prefix: sweeps[prefix],
            fetch=lambda responder, prefix: collected[prefix].get(responder, []),
        )
        return RangeSearchResult(
            low=low,
            high=high,
            cover=cover,
            responders=responders,
            data_refs=data_refs,
            messages=messages,
            failed_attempts=failed,
            retry_delay=retry_delay,
        )

    async def push_update(self, destination: Address, ref: DataRef) -> bool:
        """Send one index update to *destination*; True on delivery.

        Full :class:`~repro.faults.RetryPolicy` semantics: bounded
        attempts, exponential backoff spent on both the simulated clock
        and the event-loop clock, and the accumulated-delay deadline.
        """
        message = update_message(
            self.peer.address, destination, ref.key, ref.holder, ref.version
        )
        retry = self.retry
        attempts = retry.attempts if retry is not None else 1
        spent = 0.0
        attempt = 1
        while True:
            try:
                await self.transport.request(message)
                return True
            except NoHandlerError:
                return False
            except (PeerOfflineError, TransportError):
                pass
            attempt += 1
            if attempt > attempts:
                return False
            delay = retry.delay_before(attempt)
            if retry.deadline is not None and spent + delay > retry.deadline:
                return False
            spent += delay
            self.transport.stats.simulated_time += delay
            await self.transport.clock.sleep(delay)

    async def propagate_update(
        self, ref: DataRef, *, recbreadth: int = 2
    ) -> set[Address]:
        """Publish *ref* via PROPAGATE messages; returns the replicas reached."""
        return (await self.publish(ref, recbreadth=recbreadth)).reached

    async def publish(self, ref: DataRef, *, recbreadth: int = 2) -> UpdateResult:
        """:meth:`propagate_update` with the engines' full accounting."""
        if recbreadth < 1:
            raise ValueError(f"recbreadth must be >= 1, got {recbreadth}")
        keyspace.validate_key(ref.key)
        trav = Traversal(
            Budget(self.config.max_messages), StepStats(), recbreadth
        )
        await self._run_breadth(ref.key, 0, trav, ref=ref)
        return UpdateResult(
            key=ref.key,
            version=ref.version,
            reached=set(trav.responders),
            messages=trav.stats.messages,
            failed_attempts=trav.stats.failed,
            replica_count=len(self.grid.replicas_for_key(ref.key)),
        )

    def _handle_update(self, message: Message) -> Message:
        ref = DataRef(
            key=message.payload["key"],
            holder=message.payload["holder"],
            version=message.payload["version"],
        )
        self.peer.store.add_ref(ref)
        return Message(
            kind=MessageKind.UPDATE_ACK,
            source=self.peer.address,
            destination=message.source,
            in_reply_to=message.message_id,
        )


def attach_async_nodes(
    grid: PGrid,
    transport: AsyncTransport,
    *,
    retry=None,
    healer=None,
    config: SearchConfig | None = None,
) -> dict[Address, AsyncPGridNode]:
    """Create one async node per peer of *grid*, registered on *transport*."""
    return {
        peer.address: AsyncPGridNode(
            peer, grid, transport, retry=retry, healer=healer, config=config
        )
        for peer in grid.peers()
    }
