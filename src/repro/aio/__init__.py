"""``repro.aio`` — asyncio runtime over the sans-I/O protocol core.

The third driver of the protocol machines (after the in-process engines
and the synchronous message node): many
:class:`~repro.aio.node.AsyncPGridNode`\\ s run as concurrent tasks over
an :class:`~repro.aio.transport.AsyncTransport` with per-node bounded
mailboxes.  Because *all* protocol randomness stays inside the
RNG-explicit machines, a sequential workload over this runtime is
bit-identical to the engines and the sync node (the three-way
equivalence suite in ``tests/aio/``), while a concurrent workload is
merely reordered — every individual operation still routes correctly.

Entry points:

* :class:`AsyncSwarm` — build-and-serve a whole population
  (``pgrid swarm`` and the 1k-node smoke run on it);
* :func:`attach_async_nodes` — one node per peer over a transport you
  configure yourself;
* :mod:`repro.aio.tcp` — the same nodes served over real sockets using
  the :mod:`repro.net.wire` framing.

See ``docs/ASYNC.md`` for the operator guide.
"""

from repro.aio.clock import RealtimeClock, VirtualClock
from repro.aio.node import AsyncPGridNode, attach_async_nodes
from repro.aio.swarm import AsyncSwarm, SwarmReport, seed_items
from repro.aio.transport import AsyncTransport, MailboxStats

__all__ = [
    "AsyncPGridNode",
    "AsyncSwarm",
    "AsyncTransport",
    "MailboxStats",
    "RealtimeClock",
    "SwarmReport",
    "VirtualClock",
    "attach_async_nodes",
    "seed_items",
]
